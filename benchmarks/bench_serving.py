"""Online serving — latency/throughput knee under open-loop Poisson load.

The serving subsystem turns the trainer-only reproduction into a
train-and-serve system; this benchmark measures what the micro-batching
scheduler buys and where it saturates:

* **load sweep** — for each (K, batch size) the server is driven with
  open-loop Poisson arrivals at a sweep of target QPS around the
  engine's measured batch capacity, reporting simulated p50/p99 latency,
  sustained QPS and the rejection rate past the knee;
* **pool scaling** — the same query stream is driven through
  :class:`~repro.serving.EnginePool`s of 1-8 engines (replicated and
  topic-sharded) at an offered load that grows with the pool, reporting
  sustained QPS and p99 versus the engine count, the per-engine model
  footprint, and — from the analytic projection — the replication-vs-
  sharding crossover: the K past which a replicated engine's full model
  stops fitting the device and the tier must topic-shard;
* **checkpoint equivalence** — one seeded query set is served from the
  same model loaded out of a plain archive, a row-sharded checkpoint and
  a column-sharded checkpoint; the per-request topic mixtures must be
  bit-identical (one digest) across all three layouts — and across
  every pool configuration (asserted against the single engine).

* **wall-clock pool scaling** (``--wallclock``) — the same 1-N engine
  sweep, but *measured*: the model is written to an mmap checkpoint,
  :class:`~repro.serving.WorkerPool` forks N real OS processes that each
  open ``phi``/``phi_cdf`` with ``mmap_mode="r"`` (one physical copy),
  and the query stream is driven over real IPC.  Reports measured QPS
  and p99 per worker count, asserts the digests stay bit-identical to
  the single in-process engine, and compares the measured scaling curve
  against the simulated (replicated-pool) projection — naming where the
  two disagree about the knee (the simulator has no core count; the
  machine does).  Writes ``benchmarks/results/BENCH_serving_wallclock.json``.

* **open-loop wall clock** (``--open-loop``) — the missing quadrant:
  the *open-loop* Poisson stream of the load sweep driven against *real*
  worker processes.  :class:`~repro.serving.TopicServer` runs with a
  :class:`~repro.serving.WorkerPool` engine, so admission, queueing,
  batching and the result cache are the production path while execution
  is measured IPC.  Sweeps offered rate x worker count, pairs every
  measured run with a simulated twin (same scheduler/queue/cache knobs
  over a replicated :class:`~repro.serving.EnginePool`), asserts digest
  bit-identity on a cacheless identity run, diffs the two reports field
  for field via :func:`~repro.evaluation.compare_pool_scaling`, and
  writes ``BENCH_serving_openloop.json`` plus ``trace_openloop.json`` /
  ``metrics_openloop.json`` trace artifacts.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q

or directly (``--tiny`` shrinks the sweep for CI smoke runs; the
simulated modes write ``benchmarks/results/serving.{txt,json}``)::

    PYTHONPATH=src python benchmarks/bench_serving.py [--tiny] [--wallclock] [--open-loop]
"""

import argparse
import contextlib
import functools
import io
import json
import math
import os
import tempfile

import numpy as np

from repro.bench import emit_json_report, emit_report, format_table, wall_clock
from repro.bench.reporting import results_dir
from repro.core import save_model, save_model_mmap, save_sharded_model
from repro.corpus import generate_lda_corpus
from repro.corpus.datasets import NYTIMES
from repro.evaluation import compare_pool_scaling, project_pool_throughput
from repro.gpusim.device import GTX_1080
from repro.saberlda import SaberLDAConfig, train_saberlda
from repro.serving import (
    BatchScheduler,
    EnginePool,
    InferenceEngine,
    RequestQueue,
    ResultCache,
    ServingRequest,
    TopicServer,
    WorkerPool,
    engine_results_digest,
    layout_batch,
    make_requests,
    poisson_arrivals,
    pool_results_digest,
    serve_wallclock,
    warm_sampler_bank,
)
from repro.telemetry import (
    MetricsRegistry,
    SimClock,
    Tracer,
    WallClock,
    pinned_percentile,
    span_coverage,
    write_chrome_trace,
    write_metrics_json,
)
from repro.telemetry.cli import main as telemetry_cli

#: Full sweep (pytest / default CLI run).
FULL = dict(
    topic_counts=(8, 32, 64),
    batch_sizes=(1, 4, 16),
    load_factors=(0.5, 1.0, 4.0),
    num_requests=80,
    num_sweeps=8,
    mean_query_tokens=24,
    pool_engine_counts=(1, 2, 4, 8),
    crossover_topic_counts=(1_000, 10_000, 100_000),
)
#: CI smoke sweep.
TINY = dict(
    topic_counts=(8,),
    batch_sizes=(1, 4, 16),
    load_factors=(0.5, 4.0),
    num_requests=30,
    num_sweeps=4,
    mean_query_tokens=16,
    pool_engine_counts=(1, 2, 4),
    crossover_topic_counts=(1_000, 100_000),
)

VOCABULARY_SIZE = 400
NUM_TRAIN_DOCS = 120
TRAIN_ITERATIONS = 3
SEED = 42
QUEUE_DEPTH = 16
REPEAT_FRACTION = 0.1
EQUIVALENCE_QUERIES = 12


@functools.lru_cache(maxsize=None)
def _train_model(num_topics: int):
    corpus = generate_lda_corpus(
        num_documents=NUM_TRAIN_DOCS,
        vocabulary_size=VOCABULARY_SIZE,
        num_topics=max(4, num_topics // 2),
        mean_document_length=40,
        seed=SEED,
    )
    config = SaberLDAConfig.paper_defaults(
        num_topics,
        num_iterations=TRAIN_ITERATIONS,
        num_chunks=4,
        seed=SEED,
        evaluate_every=TRAIN_ITERATIONS,
    )
    result = train_saberlda(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
    )
    return result.model


def _make_queries(num_requests: int, mean_tokens: int, rng: np.random.Generator):
    """Zipf-flavoured query documents with a repeated (cacheable) tail."""
    ranks = np.arange(1, VOCABULARY_SIZE + 1, dtype=np.float64)
    weights = 1.0 / ranks**1.05
    weights /= weights.sum()
    documents = []
    for _ in range(num_requests):
        length = max(3, int(rng.poisson(mean_tokens)))
        documents.append(rng.choice(VOCABULARY_SIZE, size=length, p=weights))
    num_repeats = int(REPEAT_FRACTION * num_requests)
    for position in range(num_repeats):
        documents[-(position + 1)] = documents[position]
    return documents


def _warmed_engine(model, num_sweeps: int, documents) -> InferenceEngine:
    """One engine per model, pre-built for steady-state measurement.

    The frozen state (and hence every inference result) is independent of
    the bank's warmth and of batching, so one engine serves every load
    factor and batch size of a sweep; only the queue/scheduler/cache are
    per-simulation state.  Warming up front keeps the cold-start build
    transient out of the latency numbers.
    """
    engine = InferenceEngine.from_model(model, num_sweeps=num_sweeps, seed=SEED)
    warm_sampler_bank(engine, np.concatenate(documents))
    return engine


def _fresh_server(engine, batch_docs: int, capacity_qps: float) -> TopicServer:
    # Bound the batching delay to one batch-fill time at capacity so the
    # wait knob scales with the simulated service time, not wall units.
    max_wait = batch_docs / capacity_qps if np.isfinite(capacity_qps) else 0.0
    return TopicServer(
        engine,
        scheduler=BatchScheduler(max_batch_docs=batch_docs, max_wait_seconds=max_wait),
        queue=RequestQueue(max_depth=QUEUE_DEPTH),
        cache=ResultCache(capacity=10_000),
    )


def _batch_capacity_qps(engine, batch_docs: int, documents) -> float:
    """Measured saturation QPS: full batches over the whole query set."""
    total_seconds = 0.0
    for start in range(0, len(documents), batch_docs):
        group = documents[start : start + batch_docs]
        requests = [
            ServingRequest(
                request_id=10_000 + start + position,
                word_ids=np.asarray(doc, dtype=np.int32),
                arrival_seconds=0.0,
            )
            for position, doc in enumerate(group)
        ]
        execution = engine.execute(layout_batch(requests, batch_id=0, dispatch_seconds=0.0))
        total_seconds += execution.seconds
    if total_seconds <= 0:
        return float("inf")
    return len(documents) / total_seconds


def _load_sweep_rows(spec: dict):
    rows = []
    rng = np.random.default_rng(SEED)
    for num_topics in spec["topic_counts"]:
        model = _train_model(num_topics)
        documents = _make_queries(spec["num_requests"], spec["mean_query_tokens"], rng)
        engine = _warmed_engine(model, spec["num_sweeps"], documents)
        for batch_docs in spec["batch_sizes"]:
            capacity = _batch_capacity_qps(engine, batch_docs, documents)
            for factor in spec["load_factors"]:
                target_qps = factor * capacity
                arrivals = poisson_arrivals(
                    target_qps, spec["num_requests"], np.random.default_rng(SEED + batch_docs)
                )
                server = _fresh_server(engine, batch_docs, capacity)
                report = server.serve(make_requests(documents, arrivals))
                summary = report.summary()
                rows.append(
                    {
                        "num_topics": num_topics,
                        "batch_docs": batch_docs,
                        "load_factor": factor,
                        "target_qps": target_qps,
                        "capacity_qps": capacity,
                        **summary,
                    }
                )
    return rows


def _pool_executor(model, strategy: str, num_engines: int, spec: dict, documents):
    """A warmed executor: single engine, replicated pool or sharded pool."""
    kwargs = dict(num_sweeps=spec["num_sweeps"], seed=SEED)
    if strategy == "single":
        executor = InferenceEngine.from_model(model, **kwargs)
        engines = [executor]
    elif strategy == "replicated":
        executor = EnginePool.replicated(model, num_engines, **kwargs)
        engines = executor.engines
    else:
        executor = EnginePool.topic_sharded(model, num_engines, **kwargs)
        engines = executor.engines
    warm = np.concatenate(documents)
    for engine in engines:
        warm_sampler_bank(engine, warm)
    return executor


def _pool_scaling_rows(spec: dict):
    """Sustained QPS and p99 versus engine count, offered load growing with
    the pool (each point is driven past its own single-engine knee)."""
    num_topics = spec["topic_counts"][-1]
    model = _train_model(num_topics)
    rng = np.random.default_rng(SEED + 3)
    # Twice the load-sweep stream at half the batch size: enough batches
    # that even the widest pool has every lane busy.
    num_requests = 2 * spec["num_requests"]
    documents = _make_queries(num_requests, spec["mean_query_tokens"], rng)
    batch_docs = 8
    reference = _pool_executor(model, "single", 1, spec, documents)
    capacity = _batch_capacity_qps(reference, batch_docs, documents)

    rows = []
    for strategy in ("replicated", "topic_sharded"):
        for num_engines in spec["pool_engine_counts"]:
            if strategy == "topic_sharded" and num_engines > num_topics:
                continue
            executor = (
                reference
                if num_engines == 1 and strategy == "replicated"
                else _pool_executor(model, strategy, num_engines, spec, documents)
            )
            target_qps = 2.0 * capacity * num_engines
            arrivals = poisson_arrivals(
                target_qps, num_requests, np.random.default_rng(SEED + num_engines)
            )
            server = _fresh_server(executor, batch_docs, capacity)
            report = server.serve(make_requests(documents, arrivals))
            pool_stats = executor.stats() if isinstance(executor, EnginePool) else None
            rows.append(
                {
                    "strategy": strategy,
                    "num_engines": num_engines,
                    "num_topics": num_topics,
                    "target_qps": target_qps,
                    "model_mb_per_engine": (
                        pool_stats["model_bytes_per_engine"]
                        if pool_stats
                        else model.vocabulary_size * num_topics * 4
                    )
                    / 1e6,
                    **report.summary(),
                }
            )
    return rows


def _pool_identity_digests(spec: dict):
    """One moderate query stream, every executor configuration, one digest.

    Served with an unbounded queue so every configuration answers every
    request — the digest then covers identical request sets and must be
    identical bit for bit across single engine and both pool strategies.
    """
    num_topics = spec["topic_counts"][-1]
    model = _train_model(num_topics)
    rng = np.random.default_rng(SEED + 11)
    documents = _make_queries(EQUIVALENCE_QUERIES, spec["mean_query_tokens"], rng)
    arrivals = np.linspace(0.0, 1e-3, len(documents))
    configurations = [("single", 1)] + [
        (strategy, count)
        for strategy in ("replicated", "topic_sharded")
        for count in spec["pool_engine_counts"]
        if count > 1 and (strategy != "topic_sharded" or count <= num_topics)
    ]
    digests = {}
    for strategy, num_engines in configurations:
        executor = _pool_executor(model, strategy, num_engines, spec, documents)
        server = TopicServer(
            executor,
            scheduler=BatchScheduler(max_batch_docs=8, max_wait_seconds=1e-4),
            queue=RequestQueue(max_depth=None),
            cache=ResultCache(capacity=0),
        )
        report = server.serve(make_requests(documents, arrivals))
        digests[f"{strategy}x{num_engines}"] = pool_results_digest(report.outcomes)
    return digests


def _pool_crossover_rows(spec: dict):
    """Analytic replication-vs-sharding trade-off at published scale.

    Per (K, engines=8): projected saturation QPS of both strategies and
    the per-engine model bytes against the device's memory — the
    crossover is the smallest K whose full replicated model no longer
    fits, where topic sharding stops being an option and becomes the
    only one.
    """
    engines = 8
    rows = []
    for num_topics in spec["crossover_topic_counts"]:
        replicated = project_pool_throughput(
            NYTIMES, num_topics, 32, engines, "replicated", num_sweeps=spec["num_sweeps"]
        )
        sharded = project_pool_throughput(
            NYTIMES, num_topics, 32, engines, "topic_sharded", num_sweeps=spec["num_sweeps"]
        )
        rows.append(
            {
                "num_topics": num_topics,
                "replicated_qps": replicated.max_qps,
                "sharded_qps": sharded.max_qps,
                "replicated_mb_per_engine": replicated.model_bytes_per_engine / 1e6,
                "sharded_mb_per_engine": sharded.model_bytes_per_engine / 1e6,
                "replicated_fits_device": replicated.model_bytes_per_engine
                <= GTX_1080.global_memory_bytes,
                "sharded_fits_device": sharded.model_bytes_per_engine
                <= GTX_1080.global_memory_bytes,
                "alltoall_us": sharded.alltoall_seconds * 1e6,
            }
        )
    return rows


def _checkpoint_equivalence(spec: dict):
    """Serve one seeded query set from all three checkpoint layouts."""
    model = _train_model(spec["topic_counts"][0])
    rng = np.random.default_rng(SEED + 7)
    documents = _make_queries(EQUIVALENCE_QUERIES, spec["mean_query_tokens"], rng)

    digests = {}
    with tempfile.TemporaryDirectory() as tmpdir:
        plain = save_model(model, os.path.join(tmpdir, "model"))
        row_manifest = save_sharded_model(
            model, os.path.join(tmpdir, "rows"), num_shards=3, axis="rows"
        )
        col_manifest = save_sharded_model(
            model, os.path.join(tmpdir, "cols"), num_shards=3, axis="columns"
        )
        for label, path in (
            ("plain", plain),
            ("row-sharded", row_manifest),
            ("column-sharded", col_manifest),
        ):
            engine = InferenceEngine.from_checkpoint(
                path, num_sweeps=spec["num_sweeps"], seed=SEED
            )
            results = [
                engine.infer_request(doc, request_id=position)
                for position, doc in enumerate(documents)
            ]
            digests[label] = engine_results_digest(results)
    return digests


def _build_report(
    rows, digests, pool_rows, pool_digests, crossover_rows, wall_rows=None
) -> str:
    table = format_table(
        [
            "K",
            "Batch",
            "Load",
            "Target QPS",
            "Sustained QPS",
            "p50 (ms)",
            "p99 (ms)",
            "Rejected",
            "Cache hits",
        ],
        [
            [
                row["num_topics"],
                row["batch_docs"],
                f"{row['load_factor']:.1f}x",
                f"{row['target_qps']:.0f}",
                f"{row['sustained_qps']:.0f}",
                f"{row['p50_ms']:.3f}",
                f"{row['p99_ms']:.3f}",
                f"{row['rejection_rate']:.0%}",
                f"{row['cache_hit_rate']:.0%}",
            ]
            for row in rows
        ],
    )
    digest_table = format_table(
        ["Checkpoint layout", "Results digest"],
        [[label, digest[:16] + "..."] for label, digest in digests.items()],
    )
    identical = len(set(digests.values())) == 1
    pool_table = format_table(
        [
            "Strategy",
            "Engines",
            "Target QPS",
            "Sustained QPS",
            "p99 (ms)",
            "Rejected",
            "MB/engine",
        ],
        [
            [
                row["strategy"],
                row["num_engines"],
                f"{row['target_qps']:.0f}",
                f"{row['sustained_qps']:.0f}",
                f"{row['p99_ms']:.3f}",
                f"{row['rejection_rate']:.0%}",
                f"{row['model_mb_per_engine']:.3f}",
            ]
            for row in pool_rows
        ],
    )
    pool_identical = len(set(pool_digests.values())) == 1
    crossover_table = format_table(
        ["K", "Repl QPS", "Shard QPS", "Repl MB/eng", "Shard MB/eng", "Repl fits", "Shard fits"],
        [
            [
                row["num_topics"],
                f"{row['replicated_qps']:.0f}",
                f"{row['sharded_qps']:.0f}",
                f"{row['replicated_mb_per_engine']:.0f}",
                f"{row['sharded_mb_per_engine']:.0f}",
                "yes" if row["replicated_fits_device"] else "NO",
                "yes" if row["sharded_fits_device"] else "NO",
            ]
            for row in crossover_rows
        ],
    )
    crossover = next(
        (row["num_topics"] for row in crossover_rows if not row["replicated_fits_device"]),
        None,
    )
    crossover_line = (
        f"replication-vs-sharding crossover: K >= {crossover} no longer fits a "
        f"replicated engine ({GTX_1080.name}); the tier must topic-shard\n"
        if crossover is not None
        else "replication-vs-sharding crossover: every swept K fits a replicated engine\n"
    )
    wall_table = ""
    if wall_rows:
        wall_table = (
            "Kernel-backend wall clock (warmed engine, whole query stream):\n"
            + format_table(
                ["backend", "K", "wall seconds", "sampled tokens/s"],
                [
                    [
                        row["backend"],
                        row["num_topics"],
                        f"{row['wall_seconds']:.4f}",
                        f"{row['tokens_per_s']:.3g}",
                    ]
                    for row in wall_rows
                ],
            )
            + "\n\n"
        )
    return (
        f"Load sweep (V={VOCABULARY_SIZE}, open-loop Poisson arrivals, "
        f"queue depth {QUEUE_DEPTH}, max wait = one batch-fill at capacity):\n"
        f"{table}\n\n"
        f"Pool scaling (offered load = 2 x single-engine capacity x engines):\n"
        f"{pool_table}\n"
        f"pool results bit-identical to single engine: {'yes' if pool_identical else 'NO'}\n\n"
        f"Replication-vs-sharding projection (NYTimes shape, 8 engines, batch 32):\n"
        f"{crossover_table}\n{crossover_line}\n"
        f"{wall_table}"
        f"Checkpoint-layout equivalence (seeded query set):\n{digest_table}\n"
        f"bit-identical across layouts: {'yes' if identical else 'NO'}\n"
    )


def _wall_clock_backends(spec: dict):
    """Measured (not simulated) fold-in wall clock per kernel backend.

    One warmed engine per backend folds the sweep's query stream in;
    :func:`repro.bench.wall_clock` keeps the warmup/repeat discipline
    consistent with ``bench_kernel_backends.py``.  The per-request
    mixtures are asserted identical across backends — the wall-clock
    gap is pure kernel execution.
    """
    num_topics = spec["topic_counts"][-1]
    model = _train_model(num_topics)
    documents = _make_queries(
        spec["num_requests"], spec["mean_query_tokens"], np.random.default_rng(SEED)
    )
    num_tokens = int(sum(len(document) for document in documents))
    rows = []
    digests = {}
    for backend in ("reference", "vectorized"):
        engine = InferenceEngine.from_model(
            model, num_sweeps=spec["num_sweeps"], seed=SEED, backend=backend
        )
        warm_sampler_bank(engine, np.concatenate(documents))

        def serve_stream(engine=engine):
            return [
                engine.infer_request(document, request_id=index)
                for index, document in enumerate(documents)
            ]

        digests[backend] = engine_results_digest(serve_stream())
        timing = wall_clock(serve_stream, repeat=2, warmup=1)
        rows.append(
            {
                "backend": backend,
                "num_topics": num_topics,
                "wall_seconds": timing.best,
                "tokens_per_s": timing.throughput(num_tokens * spec["num_sweeps"]),
            }
        )
    assert digests["reference"] == digests["vectorized"], digests
    return rows


WALLCLOCK_BATCH_DOCS = 8
WALLCLOCK_REQUEST_FACTOR = 3  # wall-clock stream = factor x the sweep's stream


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


SPAN_COVERAGE_FLOOR = 0.95


def _simulated_reference(model, requests, spec: dict):
    """The bit-identity + report reference: a *simulated* serving run.

    One in-process :class:`TopicServer` (unbounded queue, no cache) over
    the same request stream, traced on a :class:`SimClock`.  It supplies
    three things at once: the reference digest every worker count must
    reproduce, the simulated :class:`ServingReport` the measured report
    is diffed against field for field, and the ``sim``-domain half of
    the dual-clock trace artifact.
    """
    engine = InferenceEngine.from_model(
        model, num_sweeps=spec["num_sweeps"], seed=SEED
    )
    tracer = Tracer(SimClock())
    metrics = MetricsRegistry()
    server = TopicServer(
        engine,
        scheduler=BatchScheduler(
            max_batch_docs=WALLCLOCK_BATCH_DOCS, max_wait_seconds=0.0
        ),
        queue=RequestQueue(max_depth=None),
        cache=ResultCache(capacity=0),
        tracer=tracer,
        metrics=metrics,
    )
    report = server.serve(requests)
    assert report.answered == len(requests), report.summary()
    return report, pool_results_digest(report.outcomes), tracer, metrics


def _assert_trace_reproduces_report(tracer, report):
    """The acceptance gate: spans alone reproduce the measured report.

    The ``request`` spans' duration multiset must answer the report's
    p50/p99 bit for bit (they carry the very same latency floats), and
    the top-level wall spans must cover >= 95% of the measured run.
    """
    latencies = [
        span.duration_seconds for span in tracer.spans if span.name == "request"
    ]
    assert len(latencies) == report.answered
    assert pinned_percentile(latencies, 50.0) == report.latency_percentile(50.0)
    assert pinned_percentile(latencies, 99.0) == report.latency_percentile(99.0)
    coverage = span_coverage(tracer.spans, report.wall_seconds)
    assert coverage >= SPAN_COVERAGE_FLOOR, (
        f"wall spans cover {coverage:.1%} of the measured run, "
        f"need >= {SPAN_COVERAGE_FLOOR:.0%}"
    )
    return coverage


def _wallclock_rows(spec: dict):
    """Measured QPS/p99 of the real process pool, 1-N workers.

    One model, one mmap checkpoint on disk; every worker count serves
    the *same* request stream and must reproduce the simulated
    reference server's thetas bit for bit (asserted via the
    request-keyed digest).  Every pool runs traced —
    :class:`~repro.telemetry.Tracer` on a wall clock plus a
    :class:`~repro.telemetry.MetricsRegistry` — and each count's trace
    must reproduce its report's p50/p99 from spans alone and cover
    >= 95% of the measured run.  The scaling gate (N=4 workers >= 2x
    one worker) only fires when the machine actually has >= 4 cores — a
    single-core container can run the data plane correctly but cannot
    exhibit parallel speedup, and the JSON records ``available_cores``
    so readers can tell which case they are looking at.
    """
    num_topics = spec["topic_counts"][-1]
    model = _train_model(num_topics)
    rng = np.random.default_rng(SEED + 23)
    num_requests = WALLCLOCK_REQUEST_FACTOR * spec["num_requests"]
    documents = _make_queries(num_requests, 2 * spec["mean_query_tokens"], rng)
    requests = [
        ServingRequest(
            request_id=index,
            word_ids=np.asarray(document, dtype=np.int32),
            arrival_seconds=0.0,
        )
        for index, document in enumerate(documents)
    ]

    simulated_report, reference_digest, sim_tracer, sim_metrics = (
        _simulated_reference(model, requests, spec)
    )

    cores = _available_cores()
    rows = []
    measured_qps = {}
    coverages = {}
    last_report = None
    last_tracer = None
    last_metrics = None
    with tempfile.TemporaryDirectory() as tmpdir:
        checkpoint = save_model_mmap(model, os.path.join(tmpdir, "ckpt"))
        for num_workers in spec["pool_engine_counts"]:
            tracer = Tracer(WallClock())
            metrics = MetricsRegistry()
            with WorkerPool(
                checkpoint,
                num_workers=num_workers,
                seed=SEED,
                num_sweeps=spec["num_sweeps"],
                tracer=tracer,
                metrics=metrics,
            ) as pool:
                workers_mmapped = all(
                    info.get("phi_is_memmap") and info.get("phi_cdf_is_memmap")
                    for info in pool.worker_info.values()
                )
                report = serve_wallclock(
                    pool, requests, batch_docs=WALLCLOCK_BATCH_DOCS
                )
            digest = pool_results_digest(report.outcomes)
            assert digest == reference_digest, (
                f"{num_workers}-worker wall-clock run diverged from the "
                f"simulated reference server"
            )
            assert workers_mmapped, pool.worker_info
            summary = report.summary()
            assert summary["pool_failed"] == 0 and summary["pool_pending"] == 0
            assert (
                summary["pool_admitted"] == summary["pool_answered"]
            ), summary
            coverages[num_workers] = _assert_trace_reproduces_report(tracer, report)
            measured_qps[num_workers] = summary["sustained_qps"]
            rows.append({"num_workers": num_workers, "digest": digest, **summary})
            last_report, last_tracer, last_metrics = report, tracer, metrics

    projected_qps = {
        count: project_pool_throughput(
            NYTIMES,
            num_topics,
            WALLCLOCK_BATCH_DOCS,
            count,
            "replicated",
            num_sweeps=spec["num_sweeps"],
        ).max_qps
        for count in spec["pool_engine_counts"]
    }
    comparison = compare_pool_scaling(
        measured_qps,
        projected_qps,
        simulated_report=simulated_report,
        measured_report=last_report,
    )

    if cores >= 4 and 4 in measured_qps:
        assert measured_qps[4] >= 2.0 * measured_qps[1], (
            f"4 workers sustained {measured_qps[4]:.0f} QPS, expected >= 2x "
            f"the single worker's {measured_qps[1]:.0f} ({cores} cores)"
        )
    telemetry = {
        "sim": (sim_tracer, sim_metrics),
        "wall": (last_tracer, last_metrics),
        "coverages": coverages,
        "last_report": last_report,
    }
    return rows, comparison, cores, telemetry


def _emit_telemetry_artifacts(telemetry, spec: dict):
    """Write the dual-clock ``trace.json`` + ``metrics.json`` artifacts
    and prove the CLI summary reproduces the measured report.

    The trace carries both domains — the simulated reference run (pid 0)
    and the widest pool's measured run (pid 1) — in one Perfetto-loadable
    file.  ``python -m repro.telemetry`` is then run on that file and its
    ``wall``-domain ``request`` row must reproduce the report's p50/p99
    (to trace precision: timestamps quantize to float microseconds).
    """
    sim_tracer, sim_metrics = telemetry["sim"]
    wall_tracer, wall_metrics = telemetry["wall"]
    report = telemetry["last_report"]
    trace_path = write_chrome_trace(
        os.path.join(results_dir(), "trace.json"),
        list(sim_tracer.spans) + list(wall_tracer.spans),
        metadata={"bench": "serving_wallclock", "seed": SEED},
    )
    wall_metrics.merge_wire(sim_metrics.drain_wire())
    metrics_path = write_metrics_json(
        os.path.join(results_dir(), "metrics.json"),
        wall_metrics,
        metadata={"bench": "serving_wallclock", "seed": SEED},
    )

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        status = telemetry_cli([trace_path, "--domain", "wall", "--json"])
    assert status == 0
    phases = {
        row["name"]: row for row in json.loads(stdout.getvalue())["phases"]
    }
    request_row = phases["request"]
    assert request_row["count"] == report.answered
    assert math.isclose(
        request_row["p50_seconds"], report.latency_percentile(50.0), rel_tol=1e-9
    )
    assert math.isclose(
        request_row["p99_seconds"], report.latency_percentile(99.0), rel_tol=1e-9
    )
    return trace_path, metrics_path


def _build_wallclock_report(rows, comparison, cores) -> str:
    table = format_table(
        ["Workers", "QPS", "p50 (ms)", "p99 (ms)", "Answered", "Retries", "Fallbacks"],
        [
            [
                row["num_workers"],
                f"{row['sustained_qps']:.0f}",
                f"{row['p50_ms']:.2f}",
                f"{row['p99_ms']:.2f}",
                row["answered"],
                row["pool_retries"],
                row["pool_fallback_batches"],
            ]
            for row in rows
        ],
    )
    comparison_table = format_table(
        ["Workers", "Measured x", "Projected x", "Agree"],
        [
            [
                row["num_engines"],
                f"{row['measured_speedup']:.2f}",
                f"{row['projected_speedup']:.2f}",
                "yes" if row["agree"] else "NO",
            ]
            for row in comparison.rows()
        ],
    )
    knee_line = (
        "simulated and measured scaling agree across the sweep"
        if comparison.knees_agree
        else (
            f"DISAGREE: projection knees at {comparison.projected_knee}, "
            f"measurement knees at {comparison.measured_knee} "
            f"(machine has {cores} core(s); the simulator has no core count)"
        )
    )
    return (
        f"Wall-clock process-pool scaling ({cores} core(s) available, "
        f"batch {WALLCLOCK_BATCH_DOCS} docs, mmap checkpoint shared read-only):\n"
        f"{table}\n"
        f"digests bit-identical to the simulated reference server: yes\n\n"
        f"Simulated-vs-measured scaling (speedup over one worker/engine):\n"
        f"{comparison_table}\n{knee_line}\n"
    )


def _run_wallclock(spec: dict) -> str:
    rows, comparison, cores, telemetry = _wallclock_rows(spec)
    trace_path, metrics_path = _emit_telemetry_artifacts(telemetry, spec)
    report_text = _build_wallclock_report(rows, comparison, cores)
    payload = {
        "available_cores": cores,
        "batch_docs": WALLCLOCK_BATCH_DOCS,
        "rows": rows,
        "scaling_comparison": comparison.summary(),
        "digests_identical_to_simulated_reference": True,
        "telemetry": {
            "trace_path": trace_path,
            "metrics_path": metrics_path,
            "span_coverage": {
                str(count): coverage
                for count, coverage in telemetry["coverages"].items()
            },
            "span_coverage_floor": SPAN_COVERAGE_FLOOR,
            "cli_summary_reproduces_report": True,
        },
    }
    path = emit_json_report("BENCH_serving_wallclock", payload)
    return (
        report_text
        + f"trace artifact: {trace_path}\n"
        + f"metrics artifact: {metrics_path}\n"
        + f"json report: {path}\n"
    )


OPENLOOP_RATE_FACTORS = (0.5, 2.0)  # under and over the measured knee
OPENLOOP_BATCH_DOCS = 8


def _openloop_server(executor, target_qps: float, max_depth, cache_capacity,
                     tracer=None, metrics=None) -> TopicServer:
    """One knob set for both planes: the twin runs must differ only in
    which clock advances, never in scheduler/queue/cache policy."""
    max_wait = OPENLOOP_BATCH_DOCS / target_qps if target_qps > 0 else 0.0
    kwargs = {}
    if tracer is not None:
        kwargs["tracer"] = tracer
    if metrics is not None:
        kwargs["metrics"] = metrics
    return TopicServer(
        executor,
        scheduler=BatchScheduler(
            max_batch_docs=OPENLOOP_BATCH_DOCS, max_wait_seconds=max_wait
        ),
        queue=RequestQueue(max_depth=max_depth),
        cache=ResultCache(capacity=cache_capacity),
        **kwargs,
    )


def _openloop_rows(spec: dict):
    """Measured open-loop serving (rate x workers) with a simulated twin.

    The capacity probe is a closed-loop single-worker run (the measured
    knee); each sweep point then offers ``factor x capacity x workers``
    as a Poisson stream to a :class:`TopicServer` whose engine is the
    real :class:`WorkerPool`, and to a simulated twin over a replicated
    :class:`EnginePool` of the same width with identical knobs.  The
    widest overload pair is kept for the field-for-field report diff,
    and its measured run is traced (server-side wall tracer only — the
    pool keeps its own) for the trace artifact.
    """
    num_topics = spec["topic_counts"][0]
    model = _train_model(num_topics)
    rng = np.random.default_rng(SEED + 31)
    documents = _make_queries(spec["num_requests"], spec["mean_query_tokens"], rng)
    worker_counts = tuple(
        count for count in spec["pool_engine_counts"] if count <= 4
    ) or (1,)

    rows = []
    measured_qps = {}
    simulated_qps = {}
    pair = {}
    with tempfile.TemporaryDirectory() as tmpdir:
        checkpoint = save_model_mmap(model, os.path.join(tmpdir, "ckpt"))
        with WorkerPool(
            checkpoint, num_workers=1, seed=SEED, num_sweeps=spec["num_sweeps"]
        ) as probe:
            capacity = (
                serve_wallclock(
                    probe, make_requests(documents, np.zeros(len(documents))),
                    batch_docs=OPENLOOP_BATCH_DOCS,
                ).sustained_qps
            )

        for num_workers in worker_counts:
            sim_executor = _pool_executor(
                model,
                "single" if num_workers == 1 else "replicated",
                num_workers,
                spec,
                documents,
            )
            for factor in OPENLOOP_RATE_FACTORS:
                target_qps = factor * capacity * num_workers
                arrivals = poisson_arrivals(
                    target_qps,
                    len(documents),
                    np.random.default_rng(SEED + num_workers),
                )
                requests = make_requests(documents, arrivals)
                trace_this = (
                    num_workers == worker_counts[-1]
                    and factor == OPENLOOP_RATE_FACTORS[-1]
                )
                tracer = Tracer(WallClock()) if trace_this else None
                metrics = MetricsRegistry() if trace_this else None
                with WorkerPool(
                    checkpoint,
                    num_workers=num_workers,
                    seed=SEED,
                    num_sweeps=spec["num_sweeps"],
                ) as pool:
                    measured = _openloop_server(
                        pool, target_qps, QUEUE_DEPTH, 10_000, tracer, metrics
                    ).serve(requests)
                    stats = pool.stats()
                assert stats["pending"] == 0, stats
                assert measured.answered + measured.rejected == len(requests)
                simulated = _openloop_server(
                    sim_executor, target_qps, QUEUE_DEPTH, 10_000
                ).serve(requests)
                assert simulated.answered + simulated.rejected == len(requests)
                rows.append(
                    {
                        "num_workers": num_workers,
                        "rate_factor": factor,
                        "target_qps": target_qps,
                        "simulated_qps": simulated.sustained_qps,
                        "simulated_p99_ms": simulated.p99_seconds * 1e3,
                        **measured.summary(),
                    }
                )
                if factor == OPENLOOP_RATE_FACTORS[-1]:
                    measured_qps[num_workers] = measured.sustained_qps
                    simulated_qps[num_workers] = simulated.sustained_qps
                if trace_this:
                    pair = {
                        "measured": measured,
                        "simulated": simulated,
                        "tracer": tracer,
                        "metrics": metrics,
                    }

        # Identity gate: cacheless (a cached repeat answers with the
        # *original's* theta — correct, but a different bit pattern than
        # recomputing under the repeat's request id) and unbounded, so
        # both planes answer every request and must produce one digest.
        identity_requests = make_requests(
            documents,
            poisson_arrivals(
                capacity, len(documents), np.random.default_rng(SEED + 47)
            ),
        )
        with WorkerPool(
            checkpoint,
            num_workers=worker_counts[-1],
            seed=SEED,
            num_sweeps=spec["num_sweeps"],
        ) as pool:
            measured_identity = _openloop_server(pool, capacity, None, 0).serve(
                identity_requests
            )
        sim_engine = _pool_executor(model, "single", 1, spec, documents)
        simulated_identity = _openloop_server(sim_engine, capacity, None, 0).serve(
            identity_requests
        )
        measured_digest = pool_results_digest(measured_identity.outcomes)
        simulated_digest = pool_results_digest(simulated_identity.outcomes)
        assert measured_digest == simulated_digest, (
            "measured open-loop run diverged from the simulated plane"
        )

    comparison = compare_pool_scaling(
        measured_qps,
        simulated_qps,
        simulated_report=pair["simulated"],
        measured_report=pair["measured"],
    )
    coverage = _assert_trace_reproduces_report(pair["tracer"], pair["measured"])
    return rows, comparison, capacity, pair, coverage, measured_digest


def _build_openloop_report(rows, comparison, capacity, cores) -> str:
    table = format_table(
        [
            "Workers",
            "Rate",
            "Target QPS",
            "QPS",
            "Sim QPS",
            "p50 (ms)",
            "p99 (ms)",
            "Rejected",
            "Cache hits",
        ],
        [
            [
                row["num_workers"],
                f"{row['rate_factor']:.1f}x",
                f"{row['target_qps']:.0f}",
                f"{row['sustained_qps']:.0f}",
                f"{row['simulated_qps']:.0f}",
                f"{row['p50_ms']:.2f}",
                f"{row['p99_ms']:.2f}",
                f"{row['rejection_rate']:.0%}",
                f"{row['cache_hit_rate']:.0%}",
            ]
            for row in rows
        ],
    )
    field_rows = comparison.report_fields or []
    diff_table = format_table(
        ["Field", "Simulated", "Measured", "Equal"],
        [
            [
                row["field"],
                f"{row['simulated']:.4g}",
                f"{row['measured']:.4g}",
                "yes" if row["equal"] else "no",
            ]
            for row in field_rows
        ],
    )
    return (
        f"Open-loop wall-clock serving ({cores} core(s), single-worker "
        f"closed-loop capacity {capacity:.0f} QPS, batch {OPENLOOP_BATCH_DOCS} "
        f"docs, queue depth {QUEUE_DEPTH}):\n"
        f"{table}\n"
        f"digest bit-identical to the simulated plane (cacheless run): yes\n\n"
        f"Unified report contract — widest overload pair, field for field:\n"
        f"{diff_table}\n"
    )


def _run_openloop(spec: dict) -> str:
    rows, comparison, capacity, pair, coverage, digest = _openloop_rows(spec)
    cores = _available_cores()
    trace_path = write_chrome_trace(
        os.path.join(results_dir(), "trace_openloop.json"),
        list(pair["tracer"].spans),
        metadata={"bench": "serving_openloop", "seed": SEED},
    )
    metrics_path = write_metrics_json(
        os.path.join(results_dir(), "metrics_openloop.json"),
        pair["metrics"],
        metadata={"bench": "serving_openloop", "seed": SEED},
    )
    payload = {
        "available_cores": cores,
        "batch_docs": OPENLOOP_BATCH_DOCS,
        "rate_factors": list(OPENLOOP_RATE_FACTORS),
        "capacity_qps": capacity,
        "rows": rows,
        "scaling_comparison": comparison.summary(),
        "identity_digest": digest,
        "digest_identical_to_simulated_plane": True,
        "telemetry": {
            "trace_path": trace_path,
            "metrics_path": metrics_path,
            "span_coverage": coverage,
            "span_coverage_floor": SPAN_COVERAGE_FLOOR,
        },
    }
    path = emit_json_report("BENCH_serving_openloop", payload)
    return (
        _build_openloop_report(rows, comparison, capacity, cores)
        + f"trace artifact: {trace_path}\n"
        + f"metrics artifact: {metrics_path}\n"
        + f"json report: {path}\n"
    )


def _run(spec: dict):
    rows = _load_sweep_rows(spec)
    digests = _checkpoint_equivalence(spec)
    pool_rows = _pool_scaling_rows(spec)
    pool_digests = _pool_identity_digests(spec)
    crossover_rows = _pool_crossover_rows(spec)
    return rows, digests, pool_rows, pool_digests, crossover_rows


def _check_pool_invariants(pool_rows, pool_digests, crossover_rows, spec):
    assert len(set(pool_digests.values())) == 1, (
        f"pooled serving diverged from the single engine: {pool_digests}"
    )
    replicated = sorted(
        (row for row in pool_rows if row["strategy"] == "replicated"),
        key=lambda row: row["num_engines"],
    )
    # Sustained QPS must keep scaling with the replicated lane count —
    # monotone (small tolerance for batching noise) and materially above
    # the single-engine knee at the widest pool.
    for before, after in zip(replicated, replicated[1:], strict=False):
        assert after["sustained_qps"] >= before["sustained_qps"] * 0.98, (
            before,
            after,
        )
    if len(replicated) > 1:
        assert replicated[-1]["sustained_qps"] > 1.3 * replicated[0]["sustained_qps"]
    sharded = sorted(
        (row for row in pool_rows if row["strategy"] == "topic_sharded"),
        key=lambda row: row["num_engines"],
    )
    for before, after in zip(sharded, sharded[1:], strict=False):
        assert after["model_mb_per_engine"] < before["model_mb_per_engine"]
    # The projection must exhibit the crossover: a K the swept device can
    # only serve topic-sharded.
    assert any(
        not row["replicated_fits_device"] and row["sharded_fits_device"]
        for row in crossover_rows
    ), crossover_rows


def _check_invariants(rows, digests, spec):
    assert len(set(digests.values())) == 1, (
        f"serving diverged across checkpoint layouts: {digests}"
    )
    assert len({row["batch_docs"] for row in rows}) >= 3
    for row in rows:
        assert row["p99_ms"] >= row["p50_ms"] >= 0.0
        assert row["answered"] + row["rejected"] == spec["num_requests"]
    # Past the knee the server saturates: sustained QPS decouples from the
    # offered load (it stays near capacity) and the tail latency grows
    # against the underloaded point of the same (K, batch) cell.
    for num_topics in spec["topic_counts"]:
        for batch_docs in spec["batch_sizes"]:
            cell = {
                row["load_factor"]: row
                for row in rows
                if row["num_topics"] == num_topics and row["batch_docs"] == batch_docs
            }
            low = cell[min(cell)]
            for factor, row in cell.items():
                if factor <= 1.0:
                    continue
                assert row["sustained_qps"] < row["target_qps"]
                assert row["p99_ms"] >= low["p99_ms"]


def test_serving(benchmark):
    """p50/p99/QPS across the sweep; engines sweep; one digest everywhere."""
    rows = benchmark(_load_sweep_rows, TINY)
    digests = _checkpoint_equivalence(TINY)
    pool_rows = _pool_scaling_rows(TINY)
    pool_digests = _pool_identity_digests(TINY)
    crossover_rows = _pool_crossover_rows(TINY)
    wall_rows = _wall_clock_backends(TINY)
    emit_report(
        "serving",
        _build_report(
            rows, digests, pool_rows, pool_digests, crossover_rows, wall_rows
        ),
    )
    emit_json_report(
        "serving",
        {
            "load_sweep": rows,
            "checkpoint_digests": digests,
            "pool_scaling": pool_rows,
            "pool_identity_digests": pool_digests,
            "pool_crossover": crossover_rows,
            "kernel_backend_wall_clock": wall_rows,
        },
    )
    _check_invariants(rows, digests, TINY)
    _check_pool_invariants(pool_rows, pool_digests, crossover_rows, TINY)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true", help="CI smoke sweep (seconds, not minutes)"
    )
    parser.add_argument(
        "--wallclock",
        action="store_true",
        help="measured process-pool scaling (real workers over an mmap "
        "checkpoint) instead of the simulated sweeps; writes "
        "benchmarks/results/BENCH_serving_wallclock.json",
    )
    parser.add_argument(
        "--open-loop",
        action="store_true",
        help="measured open-loop serving: the Poisson arrival stream "
        "driven through TopicServer over real worker processes, paired "
        "with a simulated twin; writes "
        "benchmarks/results/BENCH_serving_openloop.json",
    )
    args = parser.parse_args()
    spec = TINY if args.tiny else FULL
    if args.wallclock:
        print(_run_wallclock(spec))
        raise SystemExit(0)
    if args.open_loop:
        print(_run_openloop(spec))
        raise SystemExit(0)
    sweep_rows, layout_digests, pool_rows, pool_digests, crossover_rows = _run(spec)
    wall_rows = _wall_clock_backends(spec)
    report_text = _build_report(
        sweep_rows, layout_digests, pool_rows, pool_digests, crossover_rows, wall_rows
    )
    print(report_text)
    emit_report("serving", report_text)
    path = emit_json_report(
        "serving",
        {
            "load_sweep": sweep_rows,
            "checkpoint_digests": layout_digests,
            "pool_scaling": pool_rows,
            "pool_identity_digests": pool_digests,
            "pool_crossover": crossover_rows,
            "kernel_backend_wall_clock": wall_rows,
        },
    )
    _check_invariants(sweep_rows, layout_digests, spec)
    _check_pool_invariants(pool_rows, pool_digests, crossover_rows, spec)
    print(f"json report: {path}")
