"""Tests for the deterministic xorshift RNG."""

import numpy as np
import pytest

from repro.sampling import LaneRNGBank, XorShiftRNG


class TestXorShift:
    def test_deterministic_for_same_seed(self):
        first = [XorShiftRNG(7).next_uint32() for _ in range(5)]
        second = [XorShiftRNG(7).next_uint32() for _ in range(5)]
        assert first == second

    def test_different_seeds_differ(self):
        a = [XorShiftRNG(1).next_uint32() for _ in range(5)]
        b = [XorShiftRNG(2).next_uint32() for _ in range(5)]
        assert a != b

    def test_floats_in_unit_interval(self):
        rng = XorShiftRNG(3)
        values = [rng.next_float() for _ in range(1000)]
        assert min(values) >= 0.0
        assert max(values) < 1.0

    def test_floats_roughly_uniform(self):
        rng = XorShiftRNG(11)
        values = np.array([rng.next_float() for _ in range(20_000)])
        assert abs(values.mean() - 0.5) < 0.02
        assert abs((values < 0.25).mean() - 0.25) < 0.02

    def test_next_below_bounds(self):
        rng = XorShiftRNG(5)
        for _ in range(100):
            assert 0 <= rng.next_below(7) < 7

    def test_next_below_invalid(self):
        with pytest.raises(ValueError):
            XorShiftRNG(1).next_below(0)

    def test_zero_seed_does_not_stall(self):
        rng = XorShiftRNG(0)
        values = {rng.next_uint32() for _ in range(10)}
        assert len(values) == 10

    def test_spawn_streams_differ(self):
        base = XorShiftRNG(9)
        a = base.spawn(0)
        b = base.spawn(1)
        assert [a.next_uint32() for _ in range(4)] != [b.next_uint32() for _ in range(4)]


class TestLaneBank:
    def test_default_width(self):
        bank = LaneRNGBank(seed=4)
        assert len(bank) == 32

    def test_lane_streams_are_independent(self):
        bank = LaneRNGBank(seed=4)
        floats = bank.floats()
        assert len(set(np.round(floats, 12))) > 28

    def test_indexing(self):
        bank = LaneRNGBank(seed=4, num_lanes=8)
        assert isinstance(bank[3], XorShiftRNG)
