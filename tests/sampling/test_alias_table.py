"""Tests for Walker's alias table."""

import numpy as np
import pytest

from repro.sampling import AliasTable


class TestConstruction:
    def test_reconstructed_distribution_matches(self, rng):
        weights = rng.random(64) + 0.01
        table = AliasTable.build(weights)
        np.testing.assert_allclose(
            table.outcome_probabilities(), weights / weights.sum(), atol=1e-12
        )

    def test_uniform_weights(self):
        table = AliasTable.build(np.ones(8))
        np.testing.assert_allclose(table.probabilities, np.ones(8))

    def test_handles_zero_weights(self):
        weights = np.array([0.0, 1.0, 0.0, 3.0])
        table = AliasTable.build(weights)
        probs = table.outcome_probabilities()
        assert probs[0] == pytest.approx(0.0, abs=1e-12)
        assert probs[3] == pytest.approx(0.75)

    def test_construction_steps_at_least_k(self):
        table = AliasTable.build(np.random.default_rng(0).random(100))
        assert table.construction_steps >= 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AliasTable.build(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AliasTable.build(np.array([1.0, -0.5]))

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            AliasTable.build(np.zeros(4))


class TestSampling:
    def test_empirical_distribution(self, rng):
        weights = np.array([4.0, 1.0, 2.0, 1.0])
        table = AliasTable.build(weights)
        draws = table.sample_batch(rng.random(40_000), rng.random(40_000))
        empirical = np.bincount(draws, minlength=4) / 40_000
        np.testing.assert_allclose(empirical, weights / weights.sum(), atol=0.02)

    def test_scalar_and_batch_agree(self, rng):
        weights = rng.random(16) + 0.1
        table = AliasTable.build(weights)
        u1, u2 = rng.random(20), rng.random(20)
        batch = table.sample_batch(u1, u2)
        scalar = [table.sample(a, b) for a, b in zip(u1, u2, strict=True)]
        np.testing.assert_array_equal(batch, scalar)

    def test_samples_in_range(self, rng):
        table = AliasTable.build(rng.random(10) + 0.01)
        draws = table.sample_batch(rng.random(1000), rng.random(1000))
        assert draws.min() >= 0
        assert draws.max() < 10
