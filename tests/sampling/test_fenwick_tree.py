"""Tests for the Fenwick (F+) tree."""

import numpy as np
import pytest

from repro.sampling import FenwickTree


class TestConstruction:
    def test_round_trip_weights(self, rng):
        weights = rng.random(37)
        tree = FenwickTree(weights)
        np.testing.assert_allclose(tree.to_weights(), weights)

    def test_total(self, rng):
        weights = rng.random(100)
        assert FenwickTree(weights).total() == pytest.approx(weights.sum())

    def test_prefix_sums(self, rng):
        weights = rng.random(20)
        tree = FenwickTree(weights)
        for count in range(21):
            assert tree.prefix_sum(count) == pytest.approx(weights[:count].sum())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(np.array([1.0, -2.0]))


class TestUpdates:
    def test_add_updates_prefix_sums(self, rng):
        weights = rng.random(16)
        tree = FenwickTree(weights)
        tree.add(5, 2.5)
        weights[5] += 2.5
        np.testing.assert_allclose(tree.to_weights(), weights)

    def test_set_value(self, rng):
        tree = FenwickTree(rng.random(8))
        tree.set(3, 7.0)
        assert tree.get(3) == pytest.approx(7.0)

    def test_set_negative_rejected(self):
        tree = FenwickTree(np.ones(4))
        with pytest.raises(ValueError):
            tree.set(0, -1.0)

    def test_index_bounds(self):
        tree = FenwickTree(np.ones(4))
        with pytest.raises(IndexError):
            tree.add(4, 1.0)
        with pytest.raises(IndexError):
            tree.prefix_sum(5)


class TestSampling:
    def test_samples_in_range(self, rng):
        tree = FenwickTree(rng.random(33))
        for u in rng.random(200):
            assert 0 <= tree.sample(float(u)) < 33

    def test_empirical_distribution(self, rng):
        weights = np.array([1.0, 0.0, 2.0, 5.0, 2.0])
        tree = FenwickTree(weights)
        draws = np.array([tree.sample(float(u)) for u in rng.random(20_000)])
        empirical = np.bincount(draws, minlength=5) / len(draws)
        np.testing.assert_allclose(empirical, weights / weights.sum(), atol=0.02)

    def test_sampling_after_updates(self, rng):
        tree = FenwickTree(np.ones(4))
        tree.set(0, 0.0)
        tree.set(1, 0.0)
        draws = {tree.sample(float(u)) for u in rng.random(500)}
        assert draws <= {2, 3}
