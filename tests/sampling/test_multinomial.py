"""Tests for vanilla multinomial sampling and the prefix-sum search."""

import numpy as np
import pytest

from repro.sampling import (
    prefix_sum_search,
    sample_multinomial,
    sample_multinomial_batch,
    sample_sparse_vector,
)


class TestPrefixSumSearch:
    def test_basic_positions(self):
        prefix = np.array([1.0, 3.0, 6.0, 10.0])
        assert prefix_sum_search(prefix, 0.5) == 0
        assert prefix_sum_search(prefix, 1.0) == 0
        assert prefix_sum_search(prefix, 1.5) == 1
        assert prefix_sum_search(prefix, 9.9) == 3

    def test_value_above_total_clamps_to_last(self):
        prefix = np.array([1.0, 2.0])
        assert prefix_sum_search(prefix, 5.0) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            prefix_sum_search(np.array([]), 0.5)


class TestSampleMultinomial:
    def test_paper_figure2_example(self):
        """Fig. 2: p = [0.25, 0.125, 0.375, 0.25]; check the region boundaries."""
        weights = np.array([0.25, 0.125, 0.375, 0.25])
        assert sample_multinomial(weights, 0.1) == 0
        assert sample_multinomial(weights, 0.3) == 1
        assert sample_multinomial(weights, 0.5) == 2
        assert sample_multinomial(weights, 0.9) == 3

    def test_empirical_frequencies_match(self, rng):
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        draws = np.array([sample_multinomial(weights, u) for u in rng.random(20_000)])
        empirical = np.bincount(draws, minlength=4) / len(draws)
        np.testing.assert_allclose(empirical, weights / weights.sum(), atol=0.02)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            sample_multinomial(np.array([1.0, -1.0]), 0.5)

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            sample_multinomial(np.zeros(3), 0.5)

    def test_single_outcome(self):
        assert sample_multinomial(np.array([2.0]), 0.99) == 0


class TestBatch:
    def test_matches_scalar_version(self, rng):
        weights = rng.random((50, 6)) + 0.01
        uniforms = rng.random(50)
        batch = sample_multinomial_batch(weights, uniforms)
        scalar = [sample_multinomial(weights[i], uniforms[i]) for i in range(50)]
        np.testing.assert_array_equal(batch, scalar)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            sample_multinomial_batch(rng.random((3, 4)), rng.random(5))

    def test_zero_row_rejected(self, rng):
        weights = rng.random((3, 4))
        weights[1] = 0.0
        with pytest.raises(ValueError):
            sample_multinomial_batch(weights, rng.random(3))


class TestSparseVector:
    def test_returns_original_indices(self):
        indices = np.array([3, 17, 42])
        weights = np.array([0.0, 5.0, 0.0])
        assert sample_sparse_vector(indices, weights, 0.5) == 17

    def test_distribution_over_original_indices(self, rng):
        indices = np.array([2, 9])
        weights = np.array([1.0, 3.0])
        draws = [sample_sparse_vector(indices, weights, u) for u in rng.random(8000)]
        fraction_nine = np.mean(np.array(draws) == 9)
        assert fraction_nine == pytest.approx(0.75, abs=0.03)
