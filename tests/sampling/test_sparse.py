"""Tests for the sparsity-aware token sampling (Alg. 2 reference)."""

import numpy as np
import pytest

from repro.core import LDAHyperParams, count_by_word_topic, normalize_word_topic
from repro.sampling import (
    WaryTree,
    XorShiftRNG,
    exact_token_distribution,
    sample_token,
    word_prior_mass,
)


@pytest.fixture
def word_side(tiny_tokens):
    counts = count_by_word_topic(tiny_tokens, 5, 3)
    return normalize_word_topic(counts, beta=0.01)


class TestPriorMass:
    def test_prior_mass_formula(self, word_side):
        alpha = 0.4
        expected = alpha * word_side[2].sum()
        assert word_prior_mass(word_side[2], alpha) == pytest.approx(expected)


class TestExactDistribution:
    def test_normalised(self, word_side):
        dense_row = np.array([2.0, 0.0, 1.0])
        dist = exact_token_distribution(dense_row, word_side[0], alpha=0.1)
        assert dist.sum() == pytest.approx(1.0)

    def test_prefers_topics_with_high_counts(self, word_side):
        """The 'apple in document 3' example of Sec. 2.2: topic 2 beats topic 1."""
        doc3_row = np.array([0.0, 1.0, 0.0])  # document 3 has one "orange" token on topic 2
        dist = exact_token_distribution(doc3_row, word_side[2], alpha=50 / 3 * 0.01)
        assert dist[1] > dist[0]


class TestSampleToken:
    def test_matches_exact_distribution(self, word_side):
        """The two-branch decomposition must sample Eq. (1) exactly."""
        params = LDAHyperParams(num_topics=3, alpha=0.5, beta=0.01)
        dense_row = np.array([3.0, 0.0, 1.0])
        nz_indices = np.array([0, 2])
        nz_counts = np.array([3.0, 1.0])
        word_row = word_side[2]
        tree = WaryTree.build(word_row)
        prior = word_prior_mass(word_row, params.alpha)

        rng = XorShiftRNG(123)
        draws = np.array(
            [
                sample_token(nz_indices, nz_counts, word_row, prior, tree, rng)
                for _ in range(30_000)
            ]
        )
        empirical = np.bincount(draws, minlength=3) / len(draws)
        expected = exact_token_distribution(dense_row, word_row, params.alpha)
        np.testing.assert_allclose(empirical, expected, atol=0.02)

    def test_empty_document_row_uses_prior_only(self, word_side):
        word_row = word_side[0]
        tree = WaryTree.build(word_row)
        rng = XorShiftRNG(5)
        draws = {
            sample_token(np.array([]), np.array([]), word_row, 0.3, tree, rng)
            for _ in range(200)
        }
        assert draws <= {0, 1, 2}

    def test_doc_side_dominates_when_prior_mass_tiny(self, word_side):
        word_row = word_side[2]
        tree = WaryTree.build(word_row)
        rng = XorShiftRNG(7)
        nz_indices = np.array([1])
        nz_counts = np.array([50.0])
        draws = {
            sample_token(nz_indices, nz_counts, word_row, 1e-9, tree, rng)
            for _ in range(100)
        }
        assert draws == {1}
