"""Tests for the CPU-reference W-ary sampling tree."""

import numpy as np
import pytest

from repro.sampling import WaryTree


class TestConstruction:
    def test_total_matches_weight_sum(self, rng):
        weights = rng.random(200)
        tree = WaryTree.build(weights)
        assert tree.total() == pytest.approx(weights.sum())

    def test_leaf_probabilities_recovered(self, rng):
        weights = rng.random(75) + 0.01
        tree = WaryTree.build(weights)
        np.testing.assert_allclose(
            tree.leaf_probabilities(), weights / weights.sum(), atol=1e-12
        )

    def test_number_of_levels_grows_logarithmically(self):
        assert WaryTree.build(np.ones(10)).num_levels == 1
        assert WaryTree.build(np.ones(100)).num_levels == 2
        assert WaryTree.build(np.ones(2000)).num_levels == 3

    def test_small_branching_factor(self, rng):
        weights = rng.random(30)
        tree = WaryTree.build(weights, branching=3)
        np.testing.assert_allclose(tree.leaf_probabilities(), weights / weights.sum())

    def test_paper_figure7_example(self):
        """Fig. 7: weights [1,0,2,0,2,0,0,1,3] with W=3; p=7.5 lands on the leaf with value 3."""
        weights = np.array([1, 0, 2, 0, 2, 0, 0, 1, 3], dtype=float)
        tree = WaryTree.build(weights, branching=3)
        assert tree.total() == pytest.approx(9.0)
        # u = 7.5 / 9.0 should select the last leaf (index 8, the one holding value 3).
        assert tree.sample(7.5 / 9.0) == 8

    def test_construction_steps_scale_with_k_over_w(self):
        small = WaryTree.build(np.ones(32))
        large = WaryTree.build(np.ones(3200))
        assert large.construction_steps > small.construction_steps
        assert large.construction_steps <= 3200 / 32 + 8

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            WaryTree.build(np.array([]))
        with pytest.raises(ValueError):
            WaryTree.build(np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            WaryTree.build(np.ones(4), branching=1)


class TestSampling:
    def test_samples_in_range(self, rng):
        tree = WaryTree.build(rng.random(1234))
        draws = tree.sample_batch(rng.random(300))
        assert draws.min() >= 0
        assert draws.max() < 1234

    def test_empirical_distribution_small(self, rng):
        weights = np.array([3.0, 1.0, 0.0, 4.0, 2.0])
        tree = WaryTree.build(weights)
        draws = tree.sample_batch(rng.random(30_000))
        empirical = np.bincount(draws, minlength=5) / 30_000
        np.testing.assert_allclose(empirical, weights / weights.sum(), atol=0.02)

    def test_zero_weight_leaves_never_sampled(self, rng):
        weights = np.zeros(64)
        weights[10] = 1.0
        weights[50] = 1.0
        tree = WaryTree.build(weights)
        draws = set(tree.sample_batch(rng.random(500)).tolist())
        assert draws <= {10, 50}

    def test_matches_searchsorted_reference(self, rng):
        """The tree descent must agree with a direct prefix-sum search."""
        weights = rng.random(500) + 1e-6
        tree = WaryTree.build(weights)
        prefix = np.cumsum(weights)
        for u in rng.random(200):
            expected = int(np.searchsorted(prefix, u * prefix[-1], side="left"))
            assert tree.sample(float(u)) == min(expected, 499)

    def test_memory_floats_accounts_all_levels(self):
        tree = WaryTree.build(np.ones(1024))
        assert tree.memory_floats() >= 1024
