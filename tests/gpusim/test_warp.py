"""Tests for the lane-exact warp primitives."""

import numpy as np
import pytest

from repro.gpusim import (
    DivergenceTracker,
    ffs,
    warp_ballot,
    warp_copy,
    warp_prefix_sum,
    warp_reduce_sum,
    warp_shuffle_down,
    warp_vote,
)


class TestPrefixSum:
    def test_matches_cumsum(self, rng):
        values = rng.random(32)
        np.testing.assert_allclose(warp_prefix_sum(values), np.cumsum(values))

    def test_all_zeros(self):
        np.testing.assert_allclose(warp_prefix_sum(np.zeros(32)), np.zeros(32))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            warp_prefix_sum(np.ones(16))

    def test_custom_width(self, rng):
        values = rng.random(8)
        np.testing.assert_allclose(warp_prefix_sum(values, warp_width=8), np.cumsum(values))


class TestReduceAndCopy:
    def test_reduce_sum(self, rng):
        values = rng.random(32)
        assert warp_reduce_sum(values) == pytest.approx(values.sum())

    def test_copy_broadcasts_lane_value(self, rng):
        values = rng.random(32)
        assert warp_copy(values, 31) == pytest.approx(values[31])
        assert warp_copy(values, 0) == pytest.approx(values[0])

    def test_copy_invalid_lane(self):
        with pytest.raises(ValueError):
            warp_copy(np.ones(32), 32)


class TestBallotVote:
    def test_ballot_packs_bits(self):
        predicate = np.zeros(32, dtype=bool)
        predicate[0] = True
        predicate[5] = True
        assert warp_ballot(predicate) == (1 | (1 << 5))

    def test_ffs_semantics(self):
        assert ffs(0) == 0
        assert ffs(1) == 1
        assert ffs(0b1000) == 4

    def test_vote_returns_first_true_lane(self):
        predicate = np.zeros(32, dtype=bool)
        predicate[7] = True
        predicate[20] = True
        assert warp_vote(predicate) == 7

    def test_vote_returns_minus_one_when_no_lane_true(self):
        assert warp_vote(np.zeros(32, dtype=bool)) == -1

    def test_vote_with_comparison_predicate(self):
        prefix = np.cumsum(np.ones(32))
        assert warp_vote(prefix >= 10.0) == 9


class TestShuffleDown:
    def test_shifts_values(self):
        values = np.arange(32, dtype=float)
        shifted = warp_shuffle_down(values, 4)
        np.testing.assert_allclose(shifted[:28], values[4:])
        np.testing.assert_allclose(shifted[28:], values[28:])

    def test_zero_delta_is_identity(self):
        values = np.arange(32, dtype=float)
        np.testing.assert_allclose(warp_shuffle_down(values, 0), values)


class TestDivergenceTracker:
    def test_uniform_branch_is_not_divergent(self):
        tracker = DivergenceTracker()
        assert tracker.record_branch(np.ones(32, dtype=bool)) is False
        assert tracker.record_branch(np.zeros(32, dtype=bool)) is False
        assert tracker.divergence_rate == 0.0

    def test_mixed_branch_is_divergent(self):
        tracker = DivergenceTracker()
        decisions = np.zeros(32, dtype=bool)
        decisions[:16] = True
        assert tracker.record_branch(decisions) is True
        assert tracker.divergence_rate == 1.0

    def test_loop_imbalance_reduces_lane_efficiency(self):
        tracker = DivergenceTracker()
        trips = np.full(32, 10.0)
        trips[0] = 100.0
        tracker.record_loop(trips)
        assert tracker.lane_efficiency < 0.5

    def test_balanced_loops_have_full_efficiency(self):
        tracker = DivergenceTracker()
        tracker.record_loop(np.full(32, 7.0))
        assert tracker.lane_efficiency == pytest.approx(1.0)
