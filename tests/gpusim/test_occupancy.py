"""Tests for the launch configuration and occupancy model."""

import pytest

from repro.gpusim import (
    GTX_1080,
    LaunchConfig,
    best_threads_per_block,
    blocks_per_sm,
    occupancy,
    occupancy_efficiency,
    sync_overhead,
)
from repro.saberlda.costing import sampling_shared_bytes


class TestLaunchConfig:
    def test_valid_config(self):
        LaunchConfig(256, 16 * 1024).validate(GTX_1080)

    def test_non_multiple_of_warp_rejected(self):
        with pytest.raises(ValueError):
            LaunchConfig(100).validate(GTX_1080)

    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError):
            LaunchConfig(2048).validate(GTX_1080)

    def test_oversized_shared_memory_rejected(self):
        with pytest.raises(ValueError):
            LaunchConfig(256, 200 * 1024).validate(GTX_1080)

    def test_warps_per_block(self):
        assert LaunchConfig(256).warps_per_block == 8


class TestBlocksPerSm:
    def test_limited_by_threads(self):
        assert blocks_per_sm(LaunchConfig(1024), GTX_1080) == 2

    def test_limited_by_shared_memory(self):
        config = LaunchConfig(64, 48 * 1024)
        assert blocks_per_sm(config, GTX_1080) == 2

    def test_limited_by_block_slots(self):
        assert blocks_per_sm(LaunchConfig(32), GTX_1080) == GTX_1080.max_blocks_per_sm


class TestOccupancy:
    def test_occupancy_in_unit_interval(self):
        for threads in (32, 128, 256, 1024):
            assert 0.0 < occupancy(LaunchConfig(threads), GTX_1080) <= 1.0

    def test_sync_overhead_grows_with_block_size(self):
        assert sync_overhead(LaunchConfig(1024)) > sync_overhead(LaunchConfig(64))

    def test_efficiency_zero_when_nothing_fits(self):
        config = LaunchConfig(32, 96 * 1024)
        # One block fits exactly; with an impossible budget it would be zero.
        assert occupancy_efficiency(config, GTX_1080) > 0.0

    def test_256_threads_is_best_for_sampling_kernel(self):
        """Sec. 4.2.3: 256 threads per block is (near-)optimal for K in 1k..5k.

        The paper finds 256 always best; our model reproduces the shape —
        256 within a few percent of the optimum and 32 clearly worse,
        increasingly so at larger K where only few blocks fit per SM.
        """
        for num_topics in (1000, 3000, 5000):
            scores = {}
            for threads in (32, 64, 128, 256, 512, 1024):
                shared = sampling_shared_bytes(num_topics, threads, mean_doc_nnz=130)
                scores[threads] = occupancy_efficiency(LaunchConfig(threads, shared), GTX_1080)
            best = max(scores, key=scores.get)
            assert best in (128, 256, 512), f"K={num_topics}: best block size was {best}"
            assert scores[256] >= 0.97 * scores[best]
            assert scores[32] < 0.92 * scores[256]

    def test_small_blocks_hurt_more_at_large_topic_counts(self):
        """At K=5000 the shared-memory budget leaves few resident blocks, so T=32 collapses."""
        shared_small_k = sampling_shared_bytes(1000, 32, 130)
        shared_large_k = sampling_shared_bytes(5000, 32, 130)
        small_k = occupancy_efficiency(LaunchConfig(32, shared_small_k), GTX_1080)
        large_k = occupancy_efficiency(LaunchConfig(32, shared_large_k), GTX_1080)
        assert large_k < small_k

    def test_best_threads_helper_matches_sweep(self):
        best = best_threads_per_block(GTX_1080, shared_bytes_per_block=16 * 1024)
        assert best % 32 == 0
        assert 32 <= best <= 1024
