"""Tests for the streaming schedule, cost model and profiler."""

import pytest

from repro.gpusim import (
    ChunkWork,
    CostModel,
    GTX_1080,
    MemorySpace,
    MemoryTraffic,
    PHASE_SAMPLING,
    Profiler,
    simulate_stream_schedule,
)


def _chunks(num_chunks: int, transfer_bytes: float, compute_seconds: float):
    return [ChunkWork(transfer_bytes, compute_seconds) for _ in range(num_chunks)]


class TestStreamSchedule:
    def test_single_worker_exposes_all_transfers(self):
        chunks = _chunks(4, transfer_bytes=1.2e9, compute_seconds=0.25)
        schedule = simulate_stream_schedule(chunks, GTX_1080, num_workers=1)
        assert schedule.makespan_seconds == pytest.approx(
            schedule.compute_seconds + schedule.transfer_seconds, rel=1e-6
        )

    def test_multiple_workers_hide_transfers(self):
        chunks = _chunks(6, transfer_bytes=1.2e9, compute_seconds=0.25)
        single = simulate_stream_schedule(chunks, GTX_1080, num_workers=1)
        multi = simulate_stream_schedule(chunks, GTX_1080, num_workers=4)
        assert multi.makespan_seconds < single.makespan_seconds
        assert multi.hidden_transfer_fraction > 0.5

    def test_speedup_matches_transfer_share(self):
        """Sec. 4.2.2: hiding transfers buys roughly the transfer share (~10-15%)."""
        chunks = _chunks(10, transfer_bytes=0.18e9, compute_seconds=0.1)
        single = simulate_stream_schedule(chunks, GTX_1080, num_workers=1)
        multi = simulate_stream_schedule(chunks, GTX_1080, num_workers=4)
        speedup = single.makespan_seconds / multi.makespan_seconds
        assert 1.05 < speedup < 1.25

    def test_transfer_bound_workload(self):
        chunks = _chunks(4, transfer_bytes=24e9, compute_seconds=0.01)
        schedule = simulate_stream_schedule(chunks, GTX_1080, num_workers=4)
        assert schedule.makespan_seconds >= schedule.transfer_seconds

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            simulate_stream_schedule(_chunks(1, 1.0, 1.0), GTX_1080, num_workers=0)


class TestCostModel:
    def test_global_memory_bound_kernel(self):
        traffic = MemoryTraffic()
        traffic.read(MemorySpace.GLOBAL, 144e9)
        time = CostModel(GTX_1080).kernel_time(traffic)
        assert time.bottleneck == "global"
        assert time.seconds == pytest.approx(1.0, rel=0.02)

    def test_occupancy_penalty_scales_time(self):
        traffic = MemoryTraffic()
        traffic.read(MemorySpace.GLOBAL, 1e9)
        model = CostModel(GTX_1080)
        fast = model.kernel_time(traffic, occupancy_efficiency=1.0)
        slow = model.kernel_time(traffic, occupancy_efficiency=0.5)
        assert slow.seconds == pytest.approx(2 * fast.seconds)

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            CostModel(GTX_1080).kernel_time(MemoryTraffic(), occupancy_efficiency=0.0)

    def test_chain_latency_binds_for_alias_style_work(self):
        traffic = MemoryTraffic()
        traffic.dependent_chain(steps=1e8, parallelism=100.0)
        time = CostModel(GTX_1080).kernel_time(traffic)
        assert time.bottleneck == "latency"
        assert time.seconds == pytest.approx(1e8 * 350e-9 / 100.0)

    def test_chain_parallelism_clamped_to_thread_slots(self):
        traffic = MemoryTraffic()
        traffic.dependent_chain(steps=1e8, parallelism=1e9)
        slots = GTX_1080.num_sms * GTX_1080.max_threads_per_sm
        time = CostModel(GTX_1080).kernel_time(traffic)
        assert time.resource_seconds["latency"] == pytest.approx(1e8 * 350e-9 / slots)

    def test_transfer_time_uses_pcie_bandwidth(self):
        traffic = MemoryTraffic()
        traffic.transfer(12e9)
        assert CostModel(GTX_1080).transfer_time(traffic) == pytest.approx(1.0)

    def test_bandwidth_report_structure(self):
        traffic = MemoryTraffic()
        traffic.read(MemorySpace.GLOBAL, 144e9)
        traffic.read(MemorySpace.SHARED, 400e9)
        report = CostModel(GTX_1080).bandwidth_report(traffic, elapsed_seconds=1.0)
        assert set(report) == {"global", "l2", "l1", "shared"}
        assert report["global"]["utilization"] == pytest.approx(0.5, abs=0.05)

    def test_bandwidth_report_rejects_zero_time(self):
        with pytest.raises(ValueError):
            CostModel(GTX_1080).bandwidth_report(MemoryTraffic(), 0.0)


class TestProfiler:
    def test_phase_accumulation(self):
        profiler = Profiler(CostModel(GTX_1080))
        traffic = MemoryTraffic()
        traffic.read(MemorySpace.GLOBAL, 1e9)
        profiler.record(PHASE_SAMPLING, traffic, 0.5)
        profiler.record(PHASE_SAMPLING, traffic, 0.25)
        assert profiler.phase_seconds()[PHASE_SAMPLING] == pytest.approx(0.75)
        assert profiler.total_seconds() == pytest.approx(0.75)

    def test_time_breakdown_includes_all_phases(self):
        profiler = Profiler(CostModel(GTX_1080))
        breakdown = profiler.time_breakdown()
        assert set(breakdown) == {"sampling", "a_update", "preprocessing", "transfer"}

    def test_bandwidth_table_requires_recorded_phase(self):
        profiler = Profiler(CostModel(GTX_1080))
        with pytest.raises(ValueError):
            profiler.bandwidth_table()

    def test_throughput(self):
        profiler = Profiler(CostModel(GTX_1080))
        traffic = MemoryTraffic()
        profiler.record(PHASE_SAMPLING, traffic, 2.0)
        assert profiler.throughput_tokens_per_second(100_000_000) == pytest.approx(5e7)
