"""Tests for device specs and the memory-traffic accounting."""

import pytest

from repro.gpusim import (
    GTX_1080,
    HOST_CPU,
    MemorySpace,
    MemoryTraffic,
    SharedMemoryBudget,
    TITAN_X_MAXWELL,
    get_device,
)


class TestDeviceSpecs:
    def test_gtx_1080_basics(self):
        assert GTX_1080.global_memory_bytes == 8 * 1024**3
        assert GTX_1080.warp_width == 32
        assert GTX_1080.cache_line_bytes == 128

    def test_titan_x_has_more_memory(self):
        assert TITAN_X_MAXWELL.global_memory_bytes > GTX_1080.global_memory_bytes

    def test_gpu_bandwidth_exceeds_cpu(self):
        assert GTX_1080.global_bandwidth > 2 * HOST_CPU.global_bandwidth

    def test_effective_bandwidth_is_half_of_peak(self):
        assert GTX_1080.effective_global_bandwidth == pytest.approx(
            GTX_1080.global_bandwidth * 0.5
        )

    def test_fits_in_memory(self):
        assert GTX_1080.fits_in_memory(4 * 1024**3)
        assert not GTX_1080.fits_in_memory(16 * 1024**3)

    def test_lookup_by_name(self):
        assert get_device("gtx1080") is GTX_1080
        assert get_device("Titan X") is TITAN_X_MAXWELL
        assert get_device("cpu") is HOST_CPU

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("v100")


class TestMemoryTraffic:
    def test_read_write_accumulate(self):
        traffic = MemoryTraffic()
        traffic.read(MemorySpace.GLOBAL, 100.0)
        traffic.write(MemorySpace.GLOBAL, 50.0)
        assert traffic.bytes_at(MemorySpace.GLOBAL) == 150.0

    def test_random_read_charges_full_cache_line(self):
        traffic = MemoryTraffic()
        traffic.random_read(MemorySpace.GLOBAL, useful_bytes=4, device=GTX_1080, count=10)
        assert traffic.bytes_at(MemorySpace.GLOBAL) == 10 * 128

    def test_random_read_larger_than_line(self):
        traffic = MemoryTraffic()
        traffic.random_read(MemorySpace.GLOBAL, useful_bytes=512, device=GTX_1080)
        assert traffic.bytes_at(MemorySpace.GLOBAL) == 512

    def test_transfer_accumulates(self):
        traffic = MemoryTraffic()
        traffic.transfer(1000.0)
        traffic.transfer(500.0)
        assert traffic.host_device_bytes == 1500.0

    def test_merge_combines_everything(self):
        a = MemoryTraffic()
        a.read(MemorySpace.L2, 10.0)
        a.compute_warp(5.0)
        a.dependent_chain(100.0, 4.0)
        b = MemoryTraffic()
        b.read(MemorySpace.L2, 20.0)
        b.compute_scalar(3.0)
        b.dependent_chain(50.0, 8.0)
        a.merge(b)
        assert a.bytes_at(MemorySpace.L2) == 30.0
        assert a.warp_ops == 5.0
        assert a.scalar_ops == 3.0
        assert a.chain_steps == 150.0
        assert a.chain_parallelism == 8.0

    def test_copy_is_independent(self):
        a = MemoryTraffic()
        a.read(MemorySpace.SHARED, 7.0)
        b = a.copy()
        b.read(MemorySpace.SHARED, 7.0)
        assert a.bytes_at(MemorySpace.SHARED) == 7.0


class TestSharedMemoryBudget:
    def test_blocks_per_sm_from_allocation(self):
        budget = SharedMemoryBudget(GTX_1080)
        budget.allocate("bhat_row", 16 * 1024)
        assert budget.blocks_per_sm() == 6

    def test_zero_allocation_allows_max_blocks(self):
        budget = SharedMemoryBudget(GTX_1080)
        assert budget.blocks_per_sm() == GTX_1080.max_blocks_per_sm

    def test_oversized_allocation_does_not_fit(self):
        budget = SharedMemoryBudget(GTX_1080)
        budget.allocate("huge", 200 * 1024)
        assert not budget.fits()
        assert budget.blocks_per_sm() == 0

    def test_negative_allocation_rejected(self):
        budget = SharedMemoryBudget(GTX_1080)
        with pytest.raises(ValueError):
            budget.allocate("bad", -1)
