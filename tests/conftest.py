"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LDAHyperParams, TokenList
from repro.corpus import SyntheticCorpus, generate_lda_corpus


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def params() -> LDAHyperParams:
    """Small hyper-parameter set used across tests (K = 8)."""
    return LDAHyperParams.paper_defaults(8)


@pytest.fixture
def tiny_tokens() -> TokenList:
    """The example corpus of Fig. 1: 3 documents, 8 tokens, 5 words, 3 topics.

    Word ids: iOS=0, Android=1, apple=2, iPhone=3, orange=4.
    Topic ids are shifted to 0-based (paper topic 1 -> 0, etc.).
    """
    doc_ids = [0, 0, 1, 1, 1, 1, 2, 2]
    word_ids = [0, 1, 2, 3, 2, 0, 2, 4]
    topics = [2, 2, 0, 0, 0, 2, 1, 1]
    return TokenList(np.array(doc_ids), np.array(word_ids), np.array(topics))


@pytest.fixture(scope="session")
def small_corpus() -> SyntheticCorpus:
    """A small LDA-generated corpus shared by training tests (session-scoped for speed)."""
    return generate_lda_corpus(
        num_documents=60,
        vocabulary_size=150,
        num_topics=6,
        mean_document_length=40,
        seed=7,
    )


@pytest.fixture(scope="session")
def medium_corpus() -> SyntheticCorpus:
    """A slightly larger corpus for integration and convergence tests."""
    return generate_lda_corpus(
        num_documents=120,
        vocabulary_size=300,
        num_topics=10,
        mean_document_length=60,
        seed=11,
    )
