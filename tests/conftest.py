"""Shared fixtures for the test suite.

The corpus fixtures funnel through one cached :func:`make_corpus`
factory, so tests that need a specific shape declare it in one line
instead of repeating ``generate_lda_corpus`` boilerplate, and identical
requests across modules share a single generated corpus.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LDAHyperParams, TokenList
from repro.corpus import SyntheticCorpus, generate_lda_corpus

#: Seed of the suite-wide deterministic RNG fixtures.
RNG_SEED = 12345


@pytest.fixture
def rng_seed() -> int:
    """The suite-wide deterministic seed (pair of :func:`rng`)."""
    return RNG_SEED


@pytest.fixture
def rng(rng_seed) -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(rng_seed)


@pytest.fixture
def params() -> LDAHyperParams:
    """Small hyper-parameter set used across tests (K = 8)."""
    return LDAHyperParams.paper_defaults(8)


@pytest.fixture
def tiny_tokens() -> TokenList:
    """The example corpus of Fig. 1: 3 documents, 8 tokens, 5 words, 3 topics.

    Word ids: iOS=0, Android=1, apple=2, iPhone=3, orange=4.
    Topic ids are shifted to 0-based (paper topic 1 -> 0, etc.).
    """
    doc_ids = [0, 0, 1, 1, 1, 1, 2, 2]
    word_ids = [0, 1, 2, 3, 2, 0, 2, 4]
    topics = [2, 2, 0, 0, 0, 2, 1, 1]
    return TokenList(np.array(doc_ids), np.array(word_ids), np.array(topics))


@pytest.fixture(scope="session")
def make_corpus():
    """Cached factory for LDA-generated corpora.

    ``make_corpus(num_documents, vocabulary_size, num_topics,
    mean_document_length, seed)`` returns the same object for the same
    arguments for the whole session; callers must not mutate the result
    (use ``corpus.unassigned_copy()`` / ``corpus.tokens.copy()``).  The
    token arrays are frozen, so an accidental in-place write fails loudly
    instead of corrupting unrelated tests.
    """
    cache: dict = {}

    def factory(
        num_documents: int,
        vocabulary_size: int,
        num_topics: int,
        mean_document_length: int,
        seed: int,
    ) -> SyntheticCorpus:
        key = (num_documents, vocabulary_size, num_topics, mean_document_length, seed)
        if key not in cache:
            corpus = generate_lda_corpus(
                num_documents=num_documents,
                vocabulary_size=vocabulary_size,
                num_topics=num_topics,
                mean_document_length=mean_document_length,
                seed=seed,
            )
            for array in (corpus.tokens.doc_ids, corpus.tokens.word_ids, corpus.tokens.topics):
                array.flags.writeable = False
            cache[key] = corpus
        return cache[key]

    return factory


@pytest.fixture(scope="session")
def tiny_corpus(make_corpus) -> SyntheticCorpus:
    """The smallest trainable corpus (pairs with :func:`rng_seed` for seeded runs)."""
    return make_corpus(30, 60, 4, 20, RNG_SEED)


@pytest.fixture(scope="session")
def small_corpus(make_corpus) -> SyntheticCorpus:
    """A small LDA-generated corpus shared by training tests (session-scoped for speed)."""
    return make_corpus(60, 150, 6, 40, 7)


@pytest.fixture(scope="session")
def medium_corpus(make_corpus) -> SyntheticCorpus:
    """A slightly larger corpus for integration and convergence tests."""
    return make_corpus(120, 300, 10, 60, 11)
