"""Field-for-field diffing of the simulated vs measured serving planes."""

import math

import pytest

from repro.evaluation import (
    REPORT_FIELDS,
    compare_pool_scaling,
    report_field_comparison,
)
from repro.serving import RequestOutcome, ServingReport
from repro.serving.workers import WallClockOutcome, WallClockReport


def _simulated_report(latencies):
    return ServingReport(
        outcomes=[
            RequestOutcome(
                request_id=index,
                arrival_seconds=0.0,
                status="served",
                finish_seconds=latency,
            )
            for index, latency in enumerate(latencies)
        ],
        batches=[],
        makespan_seconds=max(latencies, default=0.0),
        rejection_rate=0.0,
        mean_batch_docs=2.0,
        cache_hits=0,
        cache_lookups=len(latencies),
    )


def _measured_report(latencies, wall_seconds=1.0):
    return WallClockReport(
        outcomes=[
            WallClockOutcome(
                request_id=index,
                theta=None,
                latency_seconds=latency,
                worker_id=0,
                status="answered",
            )
            for index, latency in enumerate(latencies)
        ],
        batches=[],
        wall_seconds=wall_seconds,
        pool_stats={},
    )


class TestReportFieldComparison:
    def test_every_shared_field_has_a_row(self):
        rows = report_field_comparison(
            _simulated_report([0.004, 0.008]), _measured_report([0.004, 0.008])
        )
        assert [row["field"] for row in rows] == list(REPORT_FIELDS)

    def test_identical_latency_multisets_agree_on_every_latency_field(self):
        latencies = [0.001, 0.002, 0.004]
        rows = {
            row["field"]: row
            for row in report_field_comparison(
                _simulated_report(latencies), _measured_report(latencies)
            )
        }
        for name in ("answered", "rejected", "p50_seconds", "p99_seconds",
                     "mean_seconds", "cache_hit_rate"):
            assert rows[name]["equal"], name
        assert rows["p50_seconds"]["ratio"] == 1.0

    def test_ratio_is_none_on_zero_or_nan_simulated_values(self):
        rows = {
            row["field"]: row
            for row in report_field_comparison(
                _simulated_report([]), _measured_report([0.004])
            )
        }
        # Zero simulated answered -> no ratio, not a division by zero.
        assert rows["answered"]["ratio"] is None
        # NaN simulated percentile -> no ratio either.
        assert math.isnan(rows["p50_seconds"]["simulated"])
        assert rows["p50_seconds"]["ratio"] is None
        assert not rows["p50_seconds"]["equal"]

    def test_both_nan_counts_as_agreement(self):
        """Two planes answering "no distribution" is agreement, not a diff."""
        rows = {
            row["field"]: row
            for row in report_field_comparison(
                _simulated_report([]), _measured_report([])
            )
        }
        assert math.isnan(rows["p99_seconds"]["simulated"])
        assert math.isnan(rows["p99_seconds"]["measured"])
        assert rows["p99_seconds"]["equal"]
        assert rows["p99_seconds"]["ratio"] is None


class TestComparePoolScalingReports:
    CURVES = ({1: 100.0, 2: 190.0}, {1: 100.0, 2: 200.0})

    def test_reports_must_come_as_a_pair(self):
        measured, projected = self.CURVES
        with pytest.raises(ValueError, match="both .* or neither"):
            compare_pool_scaling(
                measured, projected, simulated_report=_simulated_report([0.01])
            )
        with pytest.raises(ValueError, match="both .* or neither"):
            compare_pool_scaling(
                measured, projected, measured_report=_measured_report([0.01])
            )

    def test_report_pair_attaches_the_field_diff(self):
        measured, projected = self.CURVES
        comparison = compare_pool_scaling(
            measured,
            projected,
            simulated_report=_simulated_report([0.01, 0.02]),
            measured_report=_measured_report([0.01, 0.02]),
        )
        summary = comparison.summary()
        assert [row["field"] for row in summary["report_fields"]] == list(
            REPORT_FIELDS
        )

    def test_no_reports_keeps_the_summary_unchanged(self):
        measured, projected = self.CURVES
        summary = compare_pool_scaling(measured, projected).summary()
        assert "report_fields" not in summary
        assert summary["knees_agree"] in (True, False)
