"""Tests for the throughput projection and the convergence harness."""

import pytest

from repro.baselines import DenseGpuTrainer, EscaCpuTrainer, WarpLdaTrainer
from repro.core import LDAHyperParams
from repro.corpus import CLUEWEB, NYTIMES
from repro.evaluation import (
    ConvergenceCurve,
    compare_systems,
    project_saberlda_throughput,
    project_pool_throughput,
    project_serving_throughput,
    serving_batch_profile,
    throughput_drop_fraction,
    topic_scaling_profile,
)
from repro.gpusim import GTX_1080, TITAN_X_MAXWELL


@pytest.fixture(scope="module")
def corpus(make_corpus):
    return make_corpus(60, 150, 6, 40, 5)


class TestThroughputProjection:
    def test_nytimes_throughput_in_paper_ballpark(self):
        """The paper reports ~135 Mtoken/s on NYTimes-like workloads at K=1000."""
        projection = project_saberlda_throughput(NYTIMES, 1000, mean_doc_nnz=130)
        assert 60 < projection.mtokens_per_second < 250

    def test_clueweb_iteration_time_allows_convergence_in_hours(self):
        """Fig. 12: ClueWeb converges in ~5 hours, i.e. a few hundred iterations of tens of seconds."""
        projection = project_saberlda_throughput(
            CLUEWEB, 5000, device=GTX_1080, mean_doc_nnz=130
        )
        assert 20 < projection.iteration_seconds < 300

    def test_titan_x_slower_than_gtx_1080(self):
        """Fig. 12: GTX 1080 reaches higher throughput than the Titan X (135 vs 116 Mtoken/s)."""
        gtx = project_saberlda_throughput(CLUEWEB, 5000, device=GTX_1080, mean_doc_nnz=130)
        titan = project_saberlda_throughput(
            CLUEWEB, 5000, device=TITAN_X_MAXWELL, mean_doc_nnz=130
        )
        assert gtx.tokens_per_second > titan.tokens_per_second

    def test_headline_throughput_drop_under_one_third(self):
        """Abstract: throughput decreases by only ~17% from 1,000 to 10,000 topics."""
        profile = topic_scaling_profile(
            NYTIMES, (1_000, 10_000), device=TITAN_X_MAXWELL, mean_doc_nnz=130
        )
        drop = throughput_drop_fraction(profile)
        assert 0.0 < drop < 0.33

    def test_sampling_dominates_iteration_time(self):
        projection = project_saberlda_throughput(NYTIMES, 1000, mean_doc_nnz=130)
        assert projection.phase_seconds["sampling"] > 0.5 * projection.iteration_seconds

    def test_phase_keys(self):
        projection = project_saberlda_throughput(NYTIMES, 1000, mean_doc_nnz=130)
        assert set(projection.phase_seconds) == {
            "sampling",
            "a_update",
            "preprocessing",
            "transfer",
        }


class TestConvergenceCurve:
    def test_time_to_reach(self):
        curve = ConvergenceCurve(
            system="x", seconds=[1.0, 2.0, 3.0], log_likelihood_per_token=[-9.0, -8.0, -7.5]
        )
        assert curve.time_to_reach(-8.0) == 2.0
        assert curve.time_to_reach(-7.0) is None

    def test_final_likelihood(self):
        curve = ConvergenceCurve(system="x", seconds=[1.0], log_likelihood_per_token=[-8.0])
        assert curve.final_likelihood() == -8.0
        assert ConvergenceCurve(system="y").final_likelihood() is None


class TestCompareSystems:
    @pytest.fixture(scope="class")
    def comparison(self, corpus):
        params = LDAHyperParams(num_topics=6, alpha=0.1, beta=0.01)
        baselines = [
            EscaCpuTrainer(params, seed=1),
            WarpLdaTrainer(params, seed=1),
            DenseGpuTrainer(params, seed=1),
        ]
        from repro.saberlda import SaberLDAConfig

        config = SaberLDAConfig(params=params, num_chunks=2, seed=1)
        return compare_systems(
            corpus,
            num_topics=6,
            baselines=baselines,
            saberlda_config=config,
            descriptor=NYTIMES,
            num_iterations=6,
            seed=1,
            cost_num_topics=1000,
        )

    def test_all_systems_present(self, comparison):
        assert "SaberLDA" in comparison.curves
        assert "ESCA (CPU)" in comparison.curves
        assert "WarpLDA" in comparison.curves
        assert "BIDMach (dense GPU)" in comparison.curves

    def test_curves_have_monotone_time_axes(self, comparison):
        for curve in comparison.curves.values():
            if curve.failed:
                continue
            assert all(b > a for a, b in zip(curve.seconds, curve.seconds[1:], strict=False))

    def test_saberlda_faster_than_cpu_esca_to_common_threshold(self, comparison):
        """Fig. 11: SaberLDA reaches the target likelihood before the CPU baselines."""
        threshold = comparison.common_threshold(quantile=0.8)
        speedup = comparison.speedup("SaberLDA", "ESCA (CPU)", threshold)
        assert speedup is not None
        assert speedup > 1.5

    def test_saberlda_faster_than_dense_gpu(self, comparison):
        threshold = comparison.common_threshold(quantile=0.8)
        speedup = comparison.speedup("SaberLDA", "BIDMach (dense GPU)", threshold)
        assert speedup is not None
        assert speedup > 1.0

    def test_common_threshold_reachable_by_all(self, comparison):
        threshold = comparison.common_threshold(quantile=0.8)
        for curve in comparison.curves.values():
            if curve.failed or not curve.log_likelihood_per_token:
                continue
            assert curve.time_to_reach(threshold) is not None


class TestServingProjection:
    """The serving companion of the training projection."""

    def test_batching_amortises_into_higher_qps(self):
        profile = serving_batch_profile(NYTIMES, 1000, batch_sizes=(1, 8, 32, 128))
        qps = [profile[batch].max_qps for batch in (1, 8, 32, 128)]
        latency = [profile[batch].latency_floor_seconds for batch in (1, 8, 32, 128)]
        assert qps == sorted(qps)  # bigger batches never lose throughput
        assert latency == sorted(latency)  # but always cost latency
        assert all(value > 0 for value in qps + latency)

    def test_more_topics_cost_latency(self):
        small = project_serving_throughput(NYTIMES, 1000, batch_docs=32)
        large = project_serving_throughput(NYTIMES, 10_000, batch_docs=32)
        assert large.latency_floor_seconds > small.latency_floor_seconds
        assert large.max_qps < small.max_qps

    def test_sweeps_scale_the_sampling_phase(self):
        few = project_serving_throughput(NYTIMES, 1000, batch_docs=32, num_sweeps=5)
        many = project_serving_throughput(NYTIMES, 1000, batch_docs=32, num_sweeps=20)
        assert many.batch_seconds > few.batch_seconds

    def test_cold_start_charges_sampler_builds(self):
        warm = project_serving_throughput(NYTIMES, 1000, batch_docs=32)
        cold = project_serving_throughput(
            NYTIMES, 1000, batch_docs=32, cold_word_fraction=1.0
        )
        assert warm.cold_words_per_batch == 0.0
        assert cold.cold_words_per_batch > 0.0
        assert cold.batch_seconds > warm.batch_seconds

    def test_single_gpu_serving_needs_a_fleet_for_millions_of_users(self):
        """Sanity anchor for the ROADMAP north star: one simulated device
        serves thousands-to-tens-of-thousands of QPS at K=1000, so heavy
        traffic is a replication story, not a single-device one."""
        projection = project_serving_throughput(NYTIMES, 1000, batch_docs=32)
        assert 100 < projection.max_qps < 1_000_000

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            project_serving_throughput(NYTIMES, 1000, batch_docs=0)
        with pytest.raises(ValueError):
            project_serving_throughput(NYTIMES, 1000, 8, cold_word_fraction=1.5)


class TestPoolProjection:
    """The analytic mirror of repro.serving.pool.EnginePool.execute."""

    def test_replicated_pool_scales_qps_linearly(self):
        single = project_serving_throughput(NYTIMES, 1000, batch_docs=32)
        for engines in (1, 2, 4, 8):
            pool = project_pool_throughput(
                NYTIMES, 1000, 32, engines, strategy="replicated"
            )
            assert pool.max_qps == pytest.approx(engines * single.max_qps)
            assert pool.batch_seconds == pytest.approx(single.batch_seconds)
            assert pool.alltoall_seconds == 0.0
            assert pool.speedup_vs_single == pytest.approx(engines)

    def test_sharded_pool_trades_alltoall_for_memory(self):
        single = project_serving_throughput(NYTIMES, 10_000, batch_docs=32)
        pool = project_pool_throughput(
            NYTIMES, 10_000, 32, 4, strategy="topic_sharded"
        )
        assert pool.num_lanes == 1
        assert pool.alltoall_seconds > 0.0
        # Per-engine footprint shrinks ~1/N; the batch barrier (slowest
        # ~K/N shard) is cheaper than the full-width batch.
        # 10k columns over 4 engines: the widest slice is 2500 columns.
        assert pool.model_bytes_per_engine == pytest.approx(
            NYTIMES.vocabulary_size * 2500 * 4
        )
        assert pool.batch_seconds - pool.alltoall_seconds < single.batch_seconds

    def test_sharded_speedup_grows_with_topic_count(self):
        """Sharding pays where replication cannot: the wider the model,
        the closer the per-shard speedup gets to N (the all-to-all
        amortises over more columns)."""
        small = project_pool_throughput(NYTIMES, 1_000, 32, 4, "topic_sharded")
        large = project_pool_throughput(NYTIMES, 100_000, 32, 4, "topic_sharded")
        assert large.speedup_vs_single > small.speedup_vs_single

    def test_rejects_bad_pool_arguments(self):
        with pytest.raises(ValueError):
            project_pool_throughput(NYTIMES, 1000, 32, 0)
        with pytest.raises(ValueError):
            project_pool_throughput(NYTIMES, 1000, 32, 4, strategy="mirrored")
        with pytest.raises(ValueError):
            project_pool_throughput(NYTIMES, 8, 32, 16, strategy="topic_sharded")
