"""Tests for the memory-footprint model (Table 2) and capacity analysis (Table 1)."""

import pytest

from repro.corpus import NYTIMES, PUBMED
from repro.evaluation import (
    derived_capacity_comparison,
    max_topics_dense,
    max_topics_saberlda,
    memory_footprint,
    minimum_chunks_required,
    published_capacity_table,
    table2_rows,
    word_topic_fits_on_device,
)
from repro.gpusim import GTX_1080, TITAN_X_MAXWELL


class TestTable2:
    """Checks against the published Table 2 numbers (PubMed, GB)."""

    def test_word_topic_matrix_at_k100(self):
        gb = memory_footprint(PUBMED, 100).as_gigabytes()
        assert gb["word_topic_dense"] == pytest.approx(0.108, rel=0.1)

    def test_word_topic_matrix_scales_linearly_with_k(self):
        rows = table2_rows(PUBMED)
        assert rows[1_000]["word_topic_dense"] == pytest.approx(
            10 * rows[100]["word_topic_dense"], rel=0.01
        )
        assert rows[10_000]["word_topic_dense"] == pytest.approx(10.8, rel=0.1)

    def test_token_list_independent_of_k(self):
        rows = table2_rows(PUBMED)
        assert rows[100]["token_list"] == rows[10_000]["token_list"]
        assert rows[100]["token_list"] == pytest.approx(8.65, rel=0.05)

    def test_dense_doc_topic_matches_paper(self):
        rows = table2_rows(PUBMED)
        assert rows[100]["doc_topic_dense"] == pytest.approx(3.2, rel=0.05)
        assert rows[1_000]["doc_topic_dense"] == pytest.approx(32.0, rel=0.05)
        assert rows[10_000]["doc_topic_dense"] == pytest.approx(320.0, rel=0.05)

    def test_sparse_doc_topic_independent_of_k_beyond_1000(self):
        rows = table2_rows(PUBMED)
        assert rows[1_000]["doc_topic_sparse"] == rows[10_000]["doc_topic_sparse"]
        assert rows[1_000]["doc_topic_sparse"] == pytest.approx(5.8, rel=0.05)

    def test_sparse_beats_dense_at_1000_topics(self):
        rows = table2_rows(PUBMED)
        assert rows[1_000]["doc_topic_sparse"] < rows[1_000]["doc_topic_dense"]
        assert rows[10_000]["doc_topic_sparse"] < 0.02 * rows[10_000]["doc_topic_dense"]


class TestDeviceFit:
    def test_word_topic_fits_at_10k_on_titan_x(self):
        assert word_topic_fits_on_device(NYTIMES, 10_000, TITAN_X_MAXWELL)

    def test_minimum_chunks_grow_with_dataset(self):
        nytimes_chunks = minimum_chunks_required(NYTIMES, 1000, GTX_1080)
        pubmed_chunks = minimum_chunks_required(PUBMED, 1000, GTX_1080)
        assert pubmed_chunks >= nytimes_chunks
        assert nytimes_chunks >= 1

    def test_minimum_chunks_raise_when_model_does_not_fit(self):
        with pytest.raises(ValueError):
            minimum_chunks_required(PUBMED, 50_000, GTX_1080)


class TestTable1Capacity:
    def test_published_rows(self):
        table = published_capacity_table()
        systems = {entry.system: entry for entry in table}
        assert systems["SaberLDA"].num_topics == 10_000
        assert systems["BIDMach"].num_topics == 256
        assert len(table) == 4

    def test_saberlda_supports_more_topics_than_dense_designs(self):
        for device in (GTX_1080, TITAN_X_MAXWELL):
            assert max_topics_saberlda(NYTIMES, device) > max_topics_dense(NYTIMES, device)
            # On corpora with many documents (PubMed: 8.2M) the dense design
            # collapses while SaberLDA's limit only depends on V and K.
            assert max_topics_saberlda(PUBMED, device) > 10 * max_topics_dense(PUBMED, device)

    def test_dense_design_limited_to_hundreds_of_topics_at_scale(self):
        """Dense systems top out around a few thousand topics even on NYTimes-size corpora."""
        assert max_topics_dense(PUBMED, GTX_1080) < 300

    def test_saberlda_reaches_ten_thousand_topics(self):
        assert max_topics_saberlda(NYTIMES, TITAN_X_MAXWELL) >= 10_000

    def test_derived_comparison_keys(self):
        comparison = derived_capacity_comparison(NYTIMES, GTX_1080)
        assert set(comparison) == {
            "dense_design_max_topics",
            "saberlda_max_topics",
            "word_topic_bytes_at_10k",
        }
