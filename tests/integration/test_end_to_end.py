"""Integration tests across the full stack: corpus -> training -> evaluation."""

import numpy as np
import pytest

from repro.core import LDAHyperParams, heldout_log_likelihood
from repro.corpus import nytimes_replica
from repro.saberlda import SaberLDAConfig, ablation_presets, train_saberlda


@pytest.fixture(scope="module")
def corpus(make_corpus):
    return make_corpus(100, 250, 8, 50, 21)


@pytest.fixture(scope="module")
def result(corpus):
    config = SaberLDAConfig(
        params=LDAHyperParams(num_topics=8, alpha=0.1, beta=0.01),
        num_iterations=15,
        num_chunks=3,
        seed=4,
    )
    return train_saberlda(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
    )


class TestEndToEndTraining:
    def test_training_improves_heldout_likelihood(self, corpus, result):
        """The trained model must generalise better than an untrained one."""
        params = result.config.params
        rng = np.random.default_rng(0)
        trained = heldout_log_likelihood(
            corpus.tokens, result.model.word_topic_counts, params, rng
        )
        untrained_counts = np.ones_like(result.model.word_topic_counts)
        rng = np.random.default_rng(0)
        untrained = heldout_log_likelihood(corpus.tokens, untrained_counts, params, rng)
        assert trained.per_token > untrained.per_token + 0.2

    def test_document_sparsity_decreases_during_training(self, result):
        """As topics sharpen, documents concentrate on fewer topics (K_d shrinks)."""
        first = result.history[0].mean_doc_nnz
        last = result.history[-1].mean_doc_nnz
        assert last <= first

    def test_topic_assignments_cover_multiple_topics(self, result):
        counts = result.model.word_topic_counts.sum(axis=0)
        assert (counts > 0).sum() >= 4

    def test_inferred_mixture_matches_dominant_document_topic(self, corpus, result):
        """Fold-in inference on a training document should give a valid distribution."""
        doc_words = corpus.tokens.word_ids[corpus.tokens.doc_ids == 0]
        theta = result.model.infer_document(doc_words.tolist())
        assert theta.sum() == pytest.approx(1.0)
        assert theta.max() > 1.0 / 8


class TestAblationConsistency:
    def test_all_optimisation_levels_learn_the_same_model_shape(self, corpus):
        """The optimisations change performance, never the statistical result class."""
        final_likelihoods = {}
        for name, preset in ablation_presets(8, num_chunks=2).items():
            config = preset.with_overrides(
                params=LDAHyperParams(num_topics=8, alpha=0.1, beta=0.01),
                num_iterations=5,
                seed=11,
                evaluate_every=5,
            )
            run = train_saberlda(
                corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
            )
            final_likelihoods[name] = run.history[-1].log_likelihood_per_token
        values = list(final_likelihoods.values())
        assert max(values) - min(values) < 0.15


class TestReplicaTraining:
    def test_nytimes_replica_end_to_end(self):
        replica = nytimes_replica(num_documents=60, vocabulary_size=400, seed=9)
        config = SaberLDAConfig(
            params=LDAHyperParams(num_topics=20, alpha=0.2, beta=0.01),
            num_iterations=8,
            num_chunks=2,
            seed=1,
        )
        run = train_saberlda(
            replica.unassigned_copy(), replica.num_documents, replica.vocabulary_size, config
        )
        assert run.history[-1].log_likelihood_per_token > run.history[0].log_likelihood_per_token
        assert run.simulated_seconds > 0
        table = run.profiler.bandwidth_table()
        assert 0.0 < table["global"]["utilization"] <= 1.0
