"""Golden-file regression: a seeded end-to-end run is pinned bit-for-bit.

The golden JSON under ``tests/golden/`` captures the log-likelihood
trajectory and the word-topic count digest of a tiny, fully seeded
training run.  Any refactor that changes the *statistics* of training —
a reordered RNG draw, a different merge order, an off-by-one in the
E-step — trips this test even if every unit test still passes.

Regenerate (only when a statistical change is intentional) with::

    PYTHONPATH=src python tests/integration/test_golden_regression.py --regenerate
"""

import json
import os

import numpy as np
import pytest

from repro.core import word_topic_digest
from repro.corpus import generate_lda_corpus
from repro.distributed import train_distributed
from repro.saberlda import SaberLDAConfig, train_saberlda

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "golden", "training_run.json"
)

#: The pinned workload: tiny, seeded, 3 iterations.
CORPUS_SPEC = dict(
    num_documents=40, vocabulary_size=100, num_topics=5, mean_document_length=30, seed=123
)
NUM_TOPICS = 6
NUM_ITERATIONS = 3
NUM_CHUNKS = 4
TRAIN_SEED = 77

#: Decimal places the trajectory is pinned to.  Well below any real
#: statistical change, well above cross-platform libm jitter.
LL_DECIMALS = 9


def _run_training():
    corpus = generate_lda_corpus(**CORPUS_SPEC)
    config = SaberLDAConfig.paper_defaults(
        NUM_TOPICS, num_iterations=NUM_ITERATIONS, num_chunks=NUM_CHUNKS, seed=TRAIN_SEED
    )
    result = train_saberlda(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
    )
    return corpus, config, result


def _snapshot(result) -> dict:
    counts = np.asarray(result.model.word_topic_counts, dtype=np.int64)
    return {
        "format": "saberlda-golden-run",
        "corpus": CORPUS_SPEC,
        "num_topics": NUM_TOPICS,
        "num_iterations": NUM_ITERATIONS,
        "num_chunks": NUM_CHUNKS,
        "train_seed": TRAIN_SEED,
        "log_likelihood_per_token": [
            round(record.log_likelihood_per_token, LL_DECIMALS)
            for record in result.history
        ],
        "word_topic_digest": word_topic_digest(counts),
        "total_count": int(counts.sum()),
        "nonzero_entries": int((counts > 0).sum()),
    }


def regenerate() -> str:
    """Rewrite the golden file from a fresh run (intentional changes only)."""
    _corpus, _config, result = _run_training()
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(_snapshot(result), handle, indent=2)
        handle.write("\n")
    return GOLDEN_PATH


@pytest.fixture(scope="module")
def golden() -> dict:
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(
            f"golden file missing: {GOLDEN_PATH}; generate it with "
            "`PYTHONPATH=src python tests/integration/test_golden_regression.py --regenerate`"
        )
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def run():
    return _run_training()


class TestGoldenRun:
    def test_log_likelihood_trajectory_unchanged(self, golden, run):
        _corpus, _config, result = run
        trajectory = [
            round(record.log_likelihood_per_token, LL_DECIMALS)
            for record in result.history
        ]
        assert trajectory == pytest.approx(
            golden["log_likelihood_per_token"], abs=10**-LL_DECIMALS
        )

    def test_word_topic_digest_unchanged(self, golden, run):
        _corpus, _config, result = run
        assert word_topic_digest(result.model.word_topic_counts) == golden["word_topic_digest"]

    def test_count_invariants_unchanged(self, golden, run):
        corpus, _config, result = run
        counts = np.asarray(result.model.word_topic_counts)
        assert int(counts.sum()) == golden["total_count"] == corpus.num_tokens
        assert int((counts > 0).sum()) == golden["nonzero_entries"]

    def test_reference_backend_reproduces_the_golden_digest(self, golden):
        """The `run` fixture trains with the (default) vectorized kernel
        backend; the reference backend must pin to the same golden file —
        the backends are bit-identical by contract."""
        corpus = generate_lda_corpus(**CORPUS_SPEC)
        config = SaberLDAConfig.paper_defaults(
            NUM_TOPICS,
            num_iterations=NUM_ITERATIONS,
            num_chunks=NUM_CHUNKS,
            seed=TRAIN_SEED,
            kernel_backend="reference",
        )
        result = train_saberlda(
            corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
        )
        assert word_topic_digest(result.model.word_topic_counts) == golden["word_topic_digest"]

    def test_distributed_run_reproduces_the_golden_digest(self, golden):
        """The data-parallel trainer is pinned to the same golden statistics."""
        corpus = generate_lda_corpus(**CORPUS_SPEC)
        config = SaberLDAConfig.paper_defaults(
            NUM_TOPICS, num_iterations=NUM_ITERATIONS, num_chunks=NUM_CHUNKS, seed=TRAIN_SEED
        )
        result = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=2,
        )
        assert word_topic_digest(result.model.word_topic_counts) == golden["word_topic_digest"]
        trajectory = [
            round(record.log_likelihood_per_token, LL_DECIMALS)
            for record in result.history
        ]
        assert trajectory == pytest.approx(
            golden["log_likelihood_per_token"], abs=10**-LL_DECIMALS
        )


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        print(f"wrote {regenerate()}")
    else:
        print(__doc__)
