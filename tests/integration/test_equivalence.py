"""Cross-implementation equivalence tests.

The paper's data structures (alias table, Fenwick tree, W-ary tree, warp
kernel, SSC) are alternative implementations of the same mathematical
objects; these tests pin them against each other.
"""

import numpy as np
import pytest

from repro.core import SparseDocTopicMatrix
from repro.sampling import AliasTable, FenwickTree, WaryTree
from repro.saberlda import (
    SaberLDAConfig,
    WarpWaryTree,
    build_layout,
    merge_chunk_rows,
    rebuild_doc_topic_sort,
    rebuild_doc_topic_ssc,
)


class TestSamplingStructureEquivalence:
    """Alias table, Fenwick tree and both W-ary trees encode the same distribution."""

    @pytest.fixture
    def weights(self, rng):
        return rng.random(300) + 1e-6

    def test_alias_vs_wary_tree_distributions(self, weights):
        alias = AliasTable.build(weights)
        tree = WaryTree.build(weights)
        np.testing.assert_allclose(
            alias.outcome_probabilities(), tree.leaf_probabilities(), atol=1e-10
        )

    def test_fenwick_vs_wary_tree_samples(self, weights, rng):
        fenwick = FenwickTree(weights)
        tree = WaryTree.build(weights)
        for u in rng.random(200):
            assert fenwick.sample(float(u)) == tree.sample(float(u))

    def test_warp_tree_vs_cpu_tree_samples(self, weights, rng):
        warp_tree = WarpWaryTree.build(weights)
        cpu_tree = WaryTree.build(weights)
        for u in rng.random(200):
            assert warp_tree.sample(float(u)) == cpu_tree.sample(float(u))

    def test_empirical_agreement_of_all_structures(self, rng):
        weights = np.array([5.0, 1.0, 0.0, 3.0, 1.0, 2.0])
        expected = weights / weights.sum()
        num_draws = 30_000

        alias = AliasTable.build(weights)
        alias_draws = alias.sample_batch(rng.random(num_draws), rng.random(num_draws))
        fenwick = FenwickTree(weights)
        fenwick_draws = np.array([fenwick.sample(float(u)) for u in rng.random(num_draws)])
        tree = WarpWaryTree.build(weights)
        tree_draws = np.array([tree.sample(float(u)) for u in rng.random(num_draws)])

        for draws in (alias_draws, fenwick_draws, tree_draws):
            empirical = np.bincount(draws, minlength=6) / num_draws
            np.testing.assert_allclose(empirical, expected, atol=0.02)


class TestCountRebuildEquivalence:
    """SSC, the global sort and the reference counting must agree on real corpora."""

    @pytest.fixture(scope="class")
    def corpus(self, make_corpus):
        return make_corpus(70, 200, 12, 45, 2)

    @pytest.mark.parametrize("num_chunks", [1, 2, 5])
    def test_chunked_rebuilds_match_reference(self, corpus, num_chunks):
        config = SaberLDAConfig.paper_defaults(12, num_chunks=num_chunks)
        layouts = build_layout(corpus.tokens, corpus.num_documents, config)
        reference = SparseDocTopicMatrix.from_tokens(corpus.tokens, corpus.num_documents, 12)

        ssc = merge_chunk_rows(
            [rebuild_doc_topic_ssc(layout, 12) for layout in layouts], corpus.num_documents, 12
        )
        sort = merge_chunk_rows(
            [rebuild_doc_topic_sort(layout, 12) for layout in layouts], corpus.num_documents, 12
        )
        np.testing.assert_array_equal(ssc.to_dense(), reference.to_dense())
        np.testing.assert_array_equal(sort.to_dense(), reference.to_dense())
