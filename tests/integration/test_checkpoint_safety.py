"""Checkpoint safety and path resolution.

Two properties every load path must hold:

* **No pickle execution** — a checkpoint is data, never code.  A
  crafted archive whose member would only deserialise through pickle
  must be *rejected* with a clear error, and its payload must not run.
* **One path oracle** — ``model``, ``model.npz``, a sharded manifest
  (with or without the ``.manifest.json`` suffix) and an mmap checkpoint
  directory (or its ``checkpoint.json``) all resolve through
  :func:`repro.core.serialization.resolve_checkpoint`, so the probing
  order cannot drift between loaders.
"""

import json
import os
import pickle  # detlint: ignore[IPC001] -- crafting hostile pickled checkpoints to assert the loader rejects them
import zipfile

import numpy as np
import pytest

from repro.core import LDAHyperParams, LDAModel
from repro.core.serialization import (
    MMAP_MANIFEST_NAME,
    detect_checkpoint_format,
    load_model,
    open_frozen_artifacts,
    resolve_checkpoint,
    save_model,
    save_model_mmap,
    save_sharded_model,
)


@pytest.fixture
def model():
    rng = np.random.default_rng(11)
    counts = rng.integers(0, 25, size=(60, 6)).astype(np.int64)
    return LDAModel(
        word_topic_counts=counts,
        params=LDAHyperParams(num_topics=6, alpha=0.1, beta=0.01),
        vocabulary=[f"word{i}" for i in range(60)],
        metadata={"iterations": 3},
    )


class _Payload:
    """A pickle whose deserialisation has an observable side effect."""

    marker = None

    def __reduce__(self):
        return (_Payload._execute, ())

    @staticmethod
    def _execute():
        _Payload.marker = "executed"
        return _Payload()


class TestPickleRejection:
    def test_crafted_pickled_member_is_rejected_not_executed(self, tmp_path):
        # Build an archive shaped like a checkpoint whose vocabulary is
        # an object array: loading it requires pickle, which must never
        # happen — the loader has to refuse, and the payload stay inert.
        path = str(tmp_path / "evil.npz")
        payload = np.empty(1, dtype=object)
        payload[0] = _Payload()
        np.savez_compressed(
            path,
            word_topic_counts=np.zeros((4, 2), dtype=np.int64),
            num_topics=np.array(2),
            alpha=np.float64(0.1),
            beta=np.float64(0.01),
            vocabulary=payload,
        )
        _Payload.marker = None
        with pytest.raises(ValueError, match="pickle"):
            load_model(path)
        assert _Payload.marker is None, "pickled payload was executed"

    def test_raw_pickle_member_is_rejected_not_executed(self, tmp_path):
        # Even a hand-built zip whose member is a raw pickle stream (not
        # a real .npy) must not reach the unpickler.
        import io

        path = str(tmp_path / "raw.npz")

        def member_bytes(value):
            member = io.BytesIO()
            np.save(member, value)
            return member.getvalue()

        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr(
                "word_topic_counts.npy", member_bytes(np.zeros((4, 2), dtype=np.int64))
            )
            archive.writestr("num_topics.npy", member_bytes(np.array(2)))
            archive.writestr("alpha.npy", member_bytes(np.float64(0.1)))
            archive.writestr("beta.npy", member_bytes(np.float64(0.01)))
            archive.writestr("vocabulary.npy", pickle.dumps(_Payload()))
        _Payload.marker = None
        with pytest.raises(ValueError):
            load_model(path)
        assert _Payload.marker is None, "pickled payload was executed"

    def test_no_allow_pickle_in_load_paths(self):
        # The regression the satellite pins: the loader source must not
        # re-grow an allow_pickle=True anywhere.
        import repro.core.serialization as serialization

        with open(serialization.__file__, "r", encoding="utf-8") as handle:
            assert "allow_pickle=True" not in handle.read()

    def test_vocabulary_round_trips_pickle_free(self, model, tmp_path):
        path = save_model(model, str(tmp_path / "model"))
        restored = load_model(path)
        assert list(restored.vocabulary) == list(model.vocabulary)
        assert restored.metadata["iterations"] == 3


class TestResolveCheckpoint:
    def test_plain_exact_and_suffixless(self, model, tmp_path):
        saved = save_model(model, str(tmp_path / "model"))
        assert saved.endswith(".npz")
        base = saved[: -len(".npz")]
        assert resolve_checkpoint(saved) == ("plain", saved)
        assert resolve_checkpoint(base) == ("plain", saved)
        assert detect_checkpoint_format(base) == "plain"

    def test_sharded_exact_and_suffixless(self, model, tmp_path):
        manifest = save_sharded_model(
            model, str(tmp_path / "shards"), num_shards=2, axis="rows"
        )
        assert manifest.endswith(".manifest.json")
        base = manifest[: -len(".manifest.json")]
        assert resolve_checkpoint(manifest) == ("sharded", manifest)
        assert resolve_checkpoint(base) == ("sharded", manifest)
        assert detect_checkpoint_format(base) == "sharded"

    def test_mmap_directory_and_manifest_file(self, model, tmp_path):
        directory = save_model_mmap(model, str(tmp_path / "ckpt"))
        assert resolve_checkpoint(directory) == ("mmap", directory)
        manifest = os.path.join(directory, MMAP_MANIFEST_NAME)
        assert resolve_checkpoint(manifest) == ("mmap", directory)
        assert detect_checkpoint_format(directory) == "mmap"

    def test_missing_path_raises_with_spellings(self, tmp_path):
        missing = str(tmp_path / "nope")
        with pytest.raises(FileNotFoundError, match="nope"):
            resolve_checkpoint(missing)
        with pytest.raises(FileNotFoundError):
            load_model(missing)

    def test_directory_without_manifest_is_not_a_checkpoint(self, tmp_path):
        plain_dir = tmp_path / "not_a_checkpoint"
        plain_dir.mkdir()
        with pytest.raises(FileNotFoundError):
            resolve_checkpoint(str(plain_dir))

    def test_all_layouts_load_identically(self, model, tmp_path):
        plain = save_model(model, str(tmp_path / "plain"))
        manifest = save_sharded_model(
            model, str(tmp_path / "shards"), num_shards=3, axis="columns"
        )
        directory = save_model_mmap(model, str(tmp_path / "mmap"))
        for path in (plain, manifest, directory):
            restored = load_model(path)
            np.testing.assert_array_equal(
                restored.word_topic_counts, model.word_topic_counts
            )
            assert restored.params == model.params


class TestMmapCheckpoint:
    def test_artifacts_are_readonly_memmaps(self, model, tmp_path):
        directory = save_model_mmap(model, str(tmp_path / "ckpt"))
        artifacts = open_frozen_artifacts(directory, mmap_mode="r")
        for array in (
            artifacts.word_topic_counts,
            artifacts.phi,
            artifacts.phi_cdf,
            artifacts.prior_mass,
        ):
            assert isinstance(array, np.memmap)
            assert not array.flags.writeable

    def test_artifacts_match_inmemory_preparation(self, model, tmp_path):
        directory = save_model_mmap(model, str(tmp_path / "ckpt"))
        artifacts = open_frozen_artifacts(directory, mmap_mode="r")
        phi = model.fold_in_phi().astype(np.float64)
        np.testing.assert_array_equal(np.asarray(artifacts.phi), phi)
        np.testing.assert_array_equal(
            np.asarray(artifacts.phi_cdf), np.cumsum(phi, axis=1)
        )
        np.testing.assert_array_equal(
            np.asarray(artifacts.prior_mass), model.params.alpha * phi.sum(axis=1)
        )

    def test_manifest_is_json_with_shapes(self, model, tmp_path):
        directory = save_model_mmap(model, str(tmp_path / "ckpt"))
        with open(os.path.join(directory, MMAP_MANIFEST_NAME), encoding="utf-8") as f:
            manifest = json.load(f)
        assert manifest["vocabulary_size"] == 60
        assert manifest["num_topics"] == 6
        assert set(manifest["arrays"]) >= {"word_topic_counts", "phi", "phi_cdf"}
