"""Tests for corpus I/O (UCI bag-of-words) and model serialization."""

import numpy as np
import pytest

from repro.core import LDAHyperParams, count_by_word_topic, LDAModel
from repro.core.serialization import (
    detect_checkpoint_format,
    load_model,
    load_sharded_model,
    save_model,
    save_sharded_model,
)
from repro.corpus.io import read_uci_bag_of_words, write_uci_bag_of_words


@pytest.fixture
def corpus(make_corpus):
    return make_corpus(40, 80, 5, 25, 3)


class TestUciBagOfWords:
    def test_round_trip_preserves_token_multiset(self, corpus, tmp_path):
        docword = str(tmp_path / "docword.txt")
        vocab = str(tmp_path / "vocab.txt")
        write_uci_bag_of_words(corpus.tokens, docword, vocab, corpus.vocabulary)
        restored = read_uci_bag_of_words(docword, vocab)

        assert restored.num_tokens == corpus.num_tokens
        assert restored.num_documents == corpus.num_documents
        assert restored.vocabulary_size == corpus.vocabulary_size
        original = sorted(zip(corpus.tokens.doc_ids, corpus.tokens.word_ids, strict=True))
        loaded = sorted(zip(restored.tokens.doc_ids, restored.tokens.word_ids, strict=True))
        assert original == loaded

    def test_vocabulary_round_trip(self, corpus, tmp_path):
        docword = str(tmp_path / "docword.txt")
        vocab = str(tmp_path / "vocab.txt")
        write_uci_bag_of_words(corpus.tokens, docword, vocab, corpus.vocabulary)
        restored = read_uci_bag_of_words(docword, vocab)
        assert restored.vocabulary.words() == corpus.vocabulary.words()

    def test_header_is_valid(self, corpus, tmp_path):
        docword = str(tmp_path / "docword.txt")
        write_uci_bag_of_words(corpus.tokens, docword)
        with open(docword, "r", encoding="utf-8") as handle:
            num_documents = int(handle.readline())
            vocabulary_size = int(handle.readline())
            num_entries = int(handle.readline())
        assert num_documents == corpus.num_documents
        assert vocabulary_size == corpus.vocabulary_size
        assert num_entries > 0

    def test_max_documents_truncation(self, corpus, tmp_path):
        docword = str(tmp_path / "docword.txt")
        write_uci_bag_of_words(corpus.tokens, docword)
        subset = read_uci_bag_of_words(docword, max_documents=10)
        assert subset.num_documents == 10
        assert subset.tokens.doc_ids.max() < 10

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_uci_bag_of_words(str(tmp_path / "missing.txt"))

    def test_loaded_tokens_are_unassigned(self, corpus, tmp_path):
        docword = str(tmp_path / "docword.txt")
        write_uci_bag_of_words(corpus.tokens, docword)
        restored = read_uci_bag_of_words(docword)
        assert (restored.tokens.topics == -1).all()

    def test_invalid_count_rejected(self, tmp_path):
        path = tmp_path / "docword.txt"
        path.write_text("1\n3\n1\n1 2 0\n")
        with pytest.raises(ValueError):
            read_uci_bag_of_words(str(path))

    def test_out_of_range_word_rejected(self, tmp_path):
        path = tmp_path / "docword.txt"
        path.write_text("1\n3\n1\n1 9 2\n")
        with pytest.raises(ValueError):
            read_uci_bag_of_words(str(path))


class TestModelSerialization:
    def test_round_trip(self, corpus, tmp_path):
        params = LDAHyperParams(num_topics=5, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(corpus.tokens, corpus.vocabulary_size, 5)
        model = LDAModel(
            word_topic_counts=counts,
            params=params,
            vocabulary=corpus.vocabulary.words(),
            metadata={"system": "SaberLDA", "iterations": 10},
        )
        path = save_model(model, str(tmp_path / "model"))
        restored = load_model(path)

        np.testing.assert_array_equal(restored.word_topic_counts, counts)
        assert restored.params == params
        assert restored.vocabulary == corpus.vocabulary.words()
        assert restored.metadata["system"] == "SaberLDA"

    def test_round_trip_without_vocabulary(self, corpus, tmp_path):
        params = LDAHyperParams(num_topics=5, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(corpus.tokens, corpus.vocabulary_size, 5)
        model = LDAModel(word_topic_counts=counts, params=params)
        path = save_model(model, str(tmp_path / "bare.npz"))
        restored = load_model(path)
        assert restored.vocabulary is None
        assert restored.num_topics == 5

    def test_top_words_preserved(self, corpus, tmp_path):
        params = LDAHyperParams(num_topics=5, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(corpus.tokens, corpus.vocabulary_size, 5)
        model = LDAModel(
            word_topic_counts=counts, params=params, vocabulary=corpus.vocabulary.words()
        )
        path = save_model(model, str(tmp_path / "model"))
        restored = load_model(path)
        assert restored.top_words(0, 5) == model.top_words(0, 5)


class TestShardedCheckpoints:
    @pytest.fixture
    def model(self, corpus):
        params = LDAHyperParams(num_topics=5, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(corpus.tokens, corpus.vocabulary_size, 5)
        return LDAModel(
            word_topic_counts=counts,
            params=params,
            vocabulary=corpus.vocabulary.words(),
            metadata={"system": "SaberLDA"},
        )

    @pytest.mark.parametrize("axis", ["rows", "columns"])
    @pytest.mark.parametrize("num_shards", [1, 3, 4])
    def test_round_trip(self, model, tmp_path, axis, num_shards):
        base = str(tmp_path / "ckpt")
        save_sharded_model(model, base, num_shards=num_shards, axis=axis)
        restored = load_sharded_model(base)
        np.testing.assert_array_equal(
            restored.word_topic_counts, model.word_topic_counts
        )
        assert restored.params == model.params
        assert restored.vocabulary == model.vocabulary

    def test_column_shards_cover_topics_not_rows(self, model, tmp_path):
        base = str(tmp_path / "ckpt")
        save_sharded_model(model, base, num_shards=3, axis="columns")
        with np.load(base + ".shard000.npz") as archive:
            assert "col_start" in archive
            block = archive["word_topic_counts"]
            assert block.shape[0] == model.word_topic_counts.shape[0]
            assert block.shape[1] < model.word_topic_counts.shape[1]

    def test_column_shard_count_capped_at_num_topics(self, model, tmp_path):
        base = str(tmp_path / "ckpt")
        manifest = save_sharded_model(model, base, num_shards=50, axis="columns")
        import json

        with open(manifest, "r", encoding="utf-8") as handle:
            assert json.load(handle)["num_shards"] == 5  # K = 5
        restored = load_sharded_model(base)
        np.testing.assert_array_equal(
            restored.word_topic_counts, model.word_topic_counts
        )

    def test_missing_column_shard_raises(self, model, tmp_path):
        import os

        base = str(tmp_path / "ckpt")
        save_sharded_model(model, base, num_shards=3, axis="columns")
        os.remove(base + ".shard001.npz")
        with pytest.raises(ValueError, match="missing checkpoint shard"):
            load_sharded_model(base)

    def test_rejects_unknown_axis(self, model, tmp_path):
        with pytest.raises(ValueError, match="axis"):
            save_sharded_model(model, str(tmp_path / "ckpt"), 2, axis="diagonal")

    def test_version1_manifest_defaults_to_rows(self, model, tmp_path):
        import json

        base = str(tmp_path / "ckpt")
        manifest_path = save_sharded_model(model, base, num_shards=2, axis="rows")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        # A checkpoint written before column shards existed has no axis key.
        del manifest["axis"]
        manifest["version"] = 1
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        restored = load_sharded_model(base)
        np.testing.assert_array_equal(
            restored.word_topic_counts, model.word_topic_counts
        )


class TestLoadModelAutoDetect:
    """`load_model` serves whatever layout training saved (serving's loader)."""

    @pytest.fixture
    def model(self, corpus):
        params = LDAHyperParams(num_topics=5, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(corpus.tokens, corpus.vocabulary_size, 5)
        return LDAModel(
            word_topic_counts=counts,
            params=params,
            vocabulary=corpus.vocabulary.words(),
        )

    def test_detects_plain_archives(self, model, tmp_path):
        path = save_model(model, str(tmp_path / "plain"))
        assert detect_checkpoint_format(path) == "plain"
        assert detect_checkpoint_format(str(tmp_path / "plain")) == "plain"

    @pytest.mark.parametrize("axis", ["rows", "columns"])
    def test_detects_sharded_checkpoints(self, model, tmp_path, axis):
        base = str(tmp_path / "sharded")
        manifest = save_sharded_model(model, base, num_shards=3, axis=axis)
        assert detect_checkpoint_format(base) == "sharded"
        assert detect_checkpoint_format(manifest) == "sharded"

    def test_detect_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            detect_checkpoint_format(str(tmp_path / "nothing-here"))

    @pytest.mark.parametrize("axis", ["rows", "columns"])
    def test_load_model_reassembles_sharded_checkpoints(self, model, tmp_path, axis):
        """The satellite: callers no longer need to know the shard axis."""
        base = str(tmp_path / "ckpt")
        manifest = save_sharded_model(model, base, num_shards=4, axis=axis)
        for path in (base, manifest):
            restored = load_model(path)
            np.testing.assert_array_equal(
                restored.word_topic_counts, model.word_topic_counts
            )
            assert restored.params == model.params
            assert list(restored.vocabulary) == list(model.vocabulary)

    def test_all_three_layouts_load_identically(self, model, tmp_path):
        plain = load_model(save_model(model, str(tmp_path / "plain")))
        rows = load_model(
            save_sharded_model(model, str(tmp_path / "rows"), num_shards=3, axis="rows")
        )
        columns = load_model(
            save_sharded_model(
                model, str(tmp_path / "cols"), num_shards=3, axis="columns"
            )
        )
        np.testing.assert_array_equal(plain.word_topic_counts, rows.word_topic_counts)
        np.testing.assert_array_equal(plain.word_topic_counts, columns.word_topic_counts)
        assert plain.params == rows.params == columns.params

    def test_load_model_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(str(tmp_path / "absent"))

    def test_detect_rejects_directories(self, tmp_path):
        (tmp_path / "ckpt-dir").mkdir()
        with pytest.raises(FileNotFoundError):
            detect_checkpoint_format(str(tmp_path / "ckpt-dir"))
