"""Tests for corpus I/O (UCI bag-of-words) and model serialization."""

import numpy as np
import pytest

from repro.core import LDAHyperParams, count_by_word_topic, LDAModel
from repro.core.serialization import load_model, save_model
from repro.corpus.io import read_uci_bag_of_words, write_uci_bag_of_words


@pytest.fixture
def corpus(make_corpus):
    return make_corpus(40, 80, 5, 25, 3)


class TestUciBagOfWords:
    def test_round_trip_preserves_token_multiset(self, corpus, tmp_path):
        docword = str(tmp_path / "docword.txt")
        vocab = str(tmp_path / "vocab.txt")
        write_uci_bag_of_words(corpus.tokens, docword, vocab, corpus.vocabulary)
        restored = read_uci_bag_of_words(docword, vocab)

        assert restored.num_tokens == corpus.num_tokens
        assert restored.num_documents == corpus.num_documents
        assert restored.vocabulary_size == corpus.vocabulary_size
        original = sorted(zip(corpus.tokens.doc_ids, corpus.tokens.word_ids))
        loaded = sorted(zip(restored.tokens.doc_ids, restored.tokens.word_ids))
        assert original == loaded

    def test_vocabulary_round_trip(self, corpus, tmp_path):
        docword = str(tmp_path / "docword.txt")
        vocab = str(tmp_path / "vocab.txt")
        write_uci_bag_of_words(corpus.tokens, docword, vocab, corpus.vocabulary)
        restored = read_uci_bag_of_words(docword, vocab)
        assert restored.vocabulary.words() == corpus.vocabulary.words()

    def test_header_is_valid(self, corpus, tmp_path):
        docword = str(tmp_path / "docword.txt")
        write_uci_bag_of_words(corpus.tokens, docword)
        with open(docword, "r", encoding="utf-8") as handle:
            num_documents = int(handle.readline())
            vocabulary_size = int(handle.readline())
            num_entries = int(handle.readline())
        assert num_documents == corpus.num_documents
        assert vocabulary_size == corpus.vocabulary_size
        assert num_entries > 0

    def test_max_documents_truncation(self, corpus, tmp_path):
        docword = str(tmp_path / "docword.txt")
        write_uci_bag_of_words(corpus.tokens, docword)
        subset = read_uci_bag_of_words(docword, max_documents=10)
        assert subset.num_documents == 10
        assert subset.tokens.doc_ids.max() < 10

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_uci_bag_of_words(str(tmp_path / "missing.txt"))

    def test_loaded_tokens_are_unassigned(self, corpus, tmp_path):
        docword = str(tmp_path / "docword.txt")
        write_uci_bag_of_words(corpus.tokens, docword)
        restored = read_uci_bag_of_words(docword)
        assert (restored.tokens.topics == -1).all()

    def test_invalid_count_rejected(self, tmp_path):
        path = tmp_path / "docword.txt"
        path.write_text("1\n3\n1\n1 2 0\n")
        with pytest.raises(ValueError):
            read_uci_bag_of_words(str(path))

    def test_out_of_range_word_rejected(self, tmp_path):
        path = tmp_path / "docword.txt"
        path.write_text("1\n3\n1\n1 9 2\n")
        with pytest.raises(ValueError):
            read_uci_bag_of_words(str(path))


class TestModelSerialization:
    def test_round_trip(self, corpus, tmp_path):
        params = LDAHyperParams(num_topics=5, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(corpus.tokens, corpus.vocabulary_size, 5)
        model = LDAModel(
            word_topic_counts=counts,
            params=params,
            vocabulary=corpus.vocabulary.words(),
            metadata={"system": "SaberLDA", "iterations": 10},
        )
        path = save_model(model, str(tmp_path / "model"))
        restored = load_model(path)

        np.testing.assert_array_equal(restored.word_topic_counts, counts)
        assert restored.params == params
        assert restored.vocabulary == corpus.vocabulary.words()
        assert restored.metadata["system"] == "SaberLDA"

    def test_round_trip_without_vocabulary(self, corpus, tmp_path):
        params = LDAHyperParams(num_topics=5, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(corpus.tokens, corpus.vocabulary_size, 5)
        model = LDAModel(word_topic_counts=counts, params=params)
        path = save_model(model, str(tmp_path / "bare.npz"))
        restored = load_model(path)
        assert restored.vocabulary is None
        assert restored.num_topics == 5

    def test_top_words_preserved(self, corpus, tmp_path):
        params = LDAHyperParams(num_topics=5, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(corpus.tokens, corpus.vocabulary_size, 5)
        model = LDAModel(
            word_topic_counts=counts, params=params, vocabulary=corpus.vocabulary.words()
        )
        path = save_model(model, str(tmp_path / "model"))
        restored = load_model(path)
        assert restored.top_words(0, 5) == model.top_words(0, 5)
