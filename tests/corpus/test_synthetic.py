"""Tests for the synthetic corpus generators."""

import numpy as np

from repro.corpus import fit_zipf_exponent, generate_lda_corpus, generate_zipf_corpus


class TestLdaCorpus:
    def test_dimensions(self, small_corpus):
        assert small_corpus.num_documents == 60
        assert small_corpus.vocabulary_size == 150
        assert small_corpus.num_tokens > 0

    def test_mean_document_length_close_to_requested(self):
        corpus = generate_lda_corpus(200, 500, 10, mean_document_length=80, seed=3)
        assert 60 < corpus.tokens_per_document < 100

    def test_ground_truth_shapes(self, small_corpus):
        assert small_corpus.true_topic_word.shape == (6, 150)
        assert small_corpus.true_doc_topic.shape == (60, 6)

    def test_ground_truth_distributions_normalised(self, small_corpus):
        np.testing.assert_allclose(small_corpus.true_topic_word.sum(axis=1), np.ones(6))
        np.testing.assert_allclose(small_corpus.true_doc_topic.sum(axis=1), np.ones(60))

    def test_topics_assigned_within_range(self, small_corpus):
        assert small_corpus.tokens.topics.min() >= 0
        assert small_corpus.tokens.topics.max() < 6

    def test_word_ids_within_vocabulary(self, small_corpus):
        assert small_corpus.tokens.word_ids.max() < 150

    def test_deterministic_for_same_seed(self):
        first = generate_lda_corpus(20, 50, 4, 30, seed=42)
        second = generate_lda_corpus(20, 50, 4, 30, seed=42)
        np.testing.assert_array_equal(first.tokens.word_ids, second.tokens.word_ids)

    def test_different_seeds_differ(self):
        first = generate_lda_corpus(20, 50, 4, 30, seed=1)
        second = generate_lda_corpus(20, 50, 4, 30, seed=2)
        assert not np.array_equal(first.tokens.word_ids, second.tokens.word_ids)

    def test_term_frequencies_are_heavy_tailed(self):
        corpus = generate_lda_corpus(300, 2000, 20, 100, seed=5)
        frequencies = corpus.tokens.tokens_per_word(corpus.vocabulary_size)
        assert fit_zipf_exponent(frequencies) > 0.5

    def test_unassigned_copy_clears_topics(self, small_corpus):
        copy = small_corpus.unassigned_copy()
        assert (copy.topics == -1).all()
        assert (small_corpus.tokens.topics >= 0).all()

    def test_summary_mentions_dimensions(self, small_corpus):
        summary = small_corpus.summary()
        assert "D=60" in summary
        assert "V=150" in summary


class TestZipfCorpus:
    def test_no_topic_structure(self):
        corpus = generate_zipf_corpus(50, 200, 40, seed=9)
        assert corpus.true_topic_word is None
        assert (corpus.tokens.topics == -1).all()

    def test_document_sparsity_is_realistic(self):
        """A document's topic support after LDA generation stays well below K."""
        corpus = generate_lda_corpus(100, 500, 50, mean_document_length=60, seed=13)
        from repro.core import SparseDocTopicMatrix

        matrix = SparseDocTopicMatrix.from_tokens(corpus.tokens, corpus.num_documents, 50)
        assert matrix.mean_row_nnz() < 35

    def test_minimum_document_length(self):
        corpus = generate_zipf_corpus(30, 100, 2.0, seed=1)
        assert corpus.tokens.tokens_per_document(30).min() >= 2
