"""Tests for dataset descriptors and replicas."""

import pytest

from repro.corpus import (
    CLUEWEB,
    NYTIMES,
    PAPER_DATASETS,
    PRIOR_GPU_SYSTEMS,
    PUBMED,
    get_descriptor,
    nytimes_replica,
    pubmed_replica,
)


class TestDescriptors:
    def test_table3_nytimes(self):
        assert NYTIMES.num_documents == 300_000
        assert NYTIMES.num_tokens == 100_000_000
        assert NYTIMES.vocabulary_size == 102_000
        assert NYTIMES.tokens_per_document == pytest.approx(332, rel=0.02)

    def test_table3_pubmed(self):
        assert PUBMED.tokens_per_document == pytest.approx(90, rel=0.02)

    def test_table3_clueweb(self):
        assert CLUEWEB.num_tokens == 7_100_000_000
        assert CLUEWEB.tokens_per_document == pytest.approx(365, rel=0.02)

    def test_lookup_by_name(self):
        assert get_descriptor("NYTimes") is NYTIMES
        assert get_descriptor("pubmed") is PUBMED

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_descriptor("wikipedia")

    def test_all_paper_datasets_present(self):
        assert set(PAPER_DATASETS) == {"nytimes", "pubmed", "clueweb"}

    def test_scaled_descriptor(self):
        scaled = NYTIMES.scaled(1000)
        assert scaled.num_documents == 300
        assert scaled.num_tokens == 100_000
        assert scaled.vocabulary_size == NYTIMES.vocabulary_size

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            NYTIMES.scaled(0)


class TestPriorSystems:
    def test_table1_saberlda_row(self):
        row = PRIOR_GPU_SYSTEMS["SaberLDA"]
        assert row["K"] == 10_000
        assert row["T"] == 7_100_000_000

    def test_table1_has_all_four_systems(self):
        assert len(PRIOR_GPU_SYSTEMS) == 4


class TestReplicas:
    def test_nytimes_replica_preserves_shape(self):
        replica = nytimes_replica(num_documents=80, vocabulary_size=400, seed=2)
        assert replica.num_documents == 80
        # T/D ratio should be in the ballpark of the published 332.
        assert 200 < replica.tokens_per_document < 500

    def test_pubmed_replica_has_short_documents(self):
        replica = pubmed_replica(num_documents=80, vocabulary_size=400, seed=2)
        assert 50 < replica.tokens_per_document < 140

    def test_replicas_much_smaller_than_originals(self):
        replica = nytimes_replica(num_documents=50, vocabulary_size=300)
        assert replica.num_tokens < NYTIMES.num_tokens / 1000
