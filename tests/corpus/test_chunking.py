"""Tests for partition-by-document chunking."""

import pytest

from repro.corpus import chunk_token_histogram, merge_chunks, partition_by_document


class TestPartitioning:
    def test_every_token_lands_in_exactly_one_chunk(self, small_corpus):
        chunks = partition_by_document(small_corpus.tokens, small_corpus.num_documents, 4)
        assert sum(chunk.num_tokens for chunk in chunks) == small_corpus.num_tokens

    def test_chunks_cover_all_documents(self, small_corpus):
        chunks = partition_by_document(small_corpus.tokens, small_corpus.num_documents, 4)
        assert chunks[0].doc_start == 0
        assert chunks[-1].doc_stop == small_corpus.num_documents
        for previous, current in zip(chunks, chunks[1:], strict=False):
            assert previous.doc_stop == current.doc_start

    def test_tokens_respect_document_ranges(self, small_corpus):
        chunks = partition_by_document(small_corpus.tokens, small_corpus.num_documents, 5)
        for chunk in chunks:
            if chunk.num_tokens:
                assert chunk.tokens.doc_ids.min() >= chunk.doc_start
                assert chunk.tokens.doc_ids.max() < chunk.doc_stop

    def test_single_chunk_contains_everything(self, small_corpus):
        chunks = partition_by_document(small_corpus.tokens, small_corpus.num_documents, 1)
        assert len(chunks) == 1
        assert chunks[0].num_tokens == small_corpus.num_tokens

    def test_more_chunks_than_documents_is_clamped(self, tiny_tokens):
        chunks = partition_by_document(tiny_tokens, 3, 10)
        assert len(chunks) == 3

    def test_invalid_chunk_count(self, tiny_tokens):
        with pytest.raises(ValueError):
            partition_by_document(tiny_tokens, 3, 0)

    def test_local_doc_ids_are_rebased(self, small_corpus):
        chunks = partition_by_document(small_corpus.tokens, small_corpus.num_documents, 3)
        for chunk in chunks:
            if chunk.num_tokens:
                local = chunk.local_doc_ids()
                assert local.min() >= 0
                assert local.max() < chunk.num_documents


class TestMergeAndHistogram:
    def test_merge_restores_token_multiset(self, small_corpus):
        chunks = partition_by_document(small_corpus.tokens, small_corpus.num_documents, 4)
        merged = merge_chunks(chunks)
        original = sorted(
            zip(small_corpus.tokens.doc_ids, small_corpus.tokens.word_ids, strict=True)
        )
        restored = sorted(zip(merged.doc_ids, merged.word_ids, strict=True))
        assert original == restored

    def test_histogram_matches_chunk_sizes(self, small_corpus):
        chunks = partition_by_document(small_corpus.tokens, small_corpus.num_documents, 4)
        histogram = chunk_token_histogram(chunks)
        assert list(histogram) == [chunk.num_tokens for chunk in chunks]

    def test_chunk_sizes_roughly_balanced(self, medium_corpus):
        chunks = partition_by_document(medium_corpus.tokens, medium_corpus.num_documents, 4)
        histogram = chunk_token_histogram(chunks)
        assert histogram.max() < 2.5 * max(histogram.min(), 1)
