"""Tests for the vocabulary mapping."""

import pytest

from repro.corpus import Vocabulary


class TestVocabulary:
    def test_ids_assigned_in_insertion_order(self):
        vocab = Vocabulary(["apple", "orange", "iOS"])
        assert vocab.id_of("apple") == 0
        assert vocab.id_of("iOS") == 2

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("apple")
        second = vocab.add("apple")
        assert first == second
        assert len(vocab) == 1

    def test_round_trip(self):
        vocab = Vocabulary(["a", "b", "c"])
        for word in ["a", "b", "c"]:
            assert vocab.word_of(vocab.id_of(word)) == word

    def test_contains(self):
        vocab = Vocabulary(["a"])
        assert "a" in vocab
        assert "b" not in vocab

    def test_missing_word_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().id_of("missing")

    def test_add_all_returns_ids(self):
        vocab = Vocabulary()
        ids = vocab.add_all(["x", "y", "x"])
        assert ids == [0, 1, 0]

    def test_words_returns_copy(self):
        vocab = Vocabulary(["a", "b"])
        words = vocab.words()
        words.append("c")
        assert len(vocab) == 2

    def test_synthetic_vocabulary(self):
        vocab = Vocabulary.synthetic(5, prefix="term")
        assert len(vocab) == 5
        assert vocab.word_of(3) == "term_3"

    def test_iteration_in_id_order(self):
        vocab = Vocabulary(["z", "a", "m"])
        assert list(vocab) == ["z", "a", "m"]
