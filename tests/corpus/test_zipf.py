"""Tests for the Zipf word-frequency model."""

import numpy as np
import pytest

from repro.corpus import ZipfModel, fit_zipf_exponent


class TestZipfModel:
    def test_probabilities_sum_to_one(self):
        model = ZipfModel(vocabulary_size=1000)
        assert model.probabilities().sum() == pytest.approx(1.0)

    def test_probabilities_are_decreasing(self):
        probs = ZipfModel(vocabulary_size=500).probabilities()
        assert (np.diff(probs) <= 1e-15).all()

    def test_head_share_increases_with_head_size(self):
        model = ZipfModel(vocabulary_size=1000)
        assert model.expected_head_share(100) > model.expected_head_share(10)

    def test_head_is_heavy(self):
        """A Zipfian head of 1% of words should carry far more than 1% of tokens."""
        model = ZipfModel(vocabulary_size=10_000, exponent=1.05)
        assert model.expected_head_share(100) > 0.15

    def test_sampling_respects_vocabulary_bounds(self, rng):
        samples = ZipfModel(vocabulary_size=50).sample_word_ids(2000, rng)
        assert samples.min() >= 0
        assert samples.max() < 50

    def test_sampling_matches_head_probability(self, rng):
        model = ZipfModel(vocabulary_size=200)
        samples = model.sample_word_ids(20_000, rng)
        empirical_head = (samples < 10).mean()
        expected_head = model.expected_head_share(10)
        assert empirical_head == pytest.approx(expected_head, abs=0.03)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZipfModel(vocabulary_size=0)
        with pytest.raises(ValueError):
            ZipfModel(vocabulary_size=10, exponent=0.0)
        with pytest.raises(ValueError):
            ZipfModel(vocabulary_size=10, shift=-1.0)


class TestFitExponent:
    def test_recovers_exponent_roughly(self, rng):
        model = ZipfModel(vocabulary_size=2000, exponent=1.1, shift=0.0)
        samples = model.sample_word_ids(200_000, rng)
        frequencies = np.bincount(samples, minlength=2000)
        fitted = fit_zipf_exponent(frequencies)
        assert 0.7 < fitted < 1.5

    def test_degenerate_input(self):
        assert fit_zipf_exponent(np.array([5])) == 0.0
        assert fit_zipf_exponent(np.zeros(10)) == 0.0
