"""Supervisor state machine: backoff, breaker, ladder, event replay.

All pure — the supervisor never reads a clock, so every test passes
explicit ``now`` values and the whole lifecycle is deterministic.
"""

import numpy as np
import pytest

from repro.serving import BackoffPolicy, CircuitBreaker, DegradationPolicy, Supervisor
from repro.serving.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    LANE_DEAD,
    LANE_QUARANTINED,
    LANE_RESPAWNING,
    LANE_UP,
)


def _policy(**overrides):
    options = dict(
        respawn=True,
        max_respawns_per_lane=3,
        backoff=BackoffPolicy(base_seconds=0.1, factor=2.0, cap_seconds=1.0, jitter=0.0),
        breaker_failures=3,
        breaker_window_seconds=10.0,
        breaker_cooldown_seconds=2.0,
    )
    options.update(overrides)
    return DegradationPolicy(**options)


class TestBackoffPolicy:
    def test_raw_delay_doubles_to_the_cap(self):
        policy = BackoffPolicy(base_seconds=0.1, factor=2.0, cap_seconds=1.0, jitter=0.0)
        assert [policy.raw_delay(n) for n in range(6)] == [
            pytest.approx(v) for v in (0.1, 0.2, 0.4, 0.8, 1.0, 1.0)
        ]

    def test_huge_attempt_counts_saturate_not_overflow(self):
        policy = BackoffPolicy(base_seconds=0.05, factor=2.0, cap_seconds=3.0)
        assert policy.raw_delay(10_000) == 3.0

    def test_jitter_stretches_within_the_band_and_replays(self):
        policy = BackoffPolicy(base_seconds=0.2, factor=2.0, cap_seconds=5.0, jitter=0.25)
        first = [policy.delay(n, np.random.default_rng(4)) for n in range(4)]
        second = [policy.delay(n, np.random.default_rng(4)) for n in range(4)]
        assert first == second  # seeded jitter replays exactly
        for attempt, value in enumerate(first):
            raw = policy.raw_delay(attempt)
            assert raw <= value <= raw * 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_seconds=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=-0.1)


class TestCircuitBreaker:
    def test_opens_on_threshold_within_window(self):
        breaker = CircuitBreaker(failure_threshold=3, window_seconds=5.0)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(1.0)
        assert breaker.record_failure(2.0)
        assert breaker.state == BREAKER_OPEN

    def test_stays_closed_when_failures_straddle_the_window(self):
        breaker = CircuitBreaker(failure_threshold=3, window_seconds=5.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        # The first failure has aged out by now.
        assert not breaker.record_failure(6.5)
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(
            failure_threshold=2, window_seconds=5.0, cooldown_seconds=1.0
        )
        breaker.record_failure(0.0)
        breaker.record_failure(0.5)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(1.0)  # still cooling down
        assert breaker.allow(1.6)  # cooldown elapsed: half-open probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.record_success(1.7)
        assert breaker.state == BREAKER_CLOSED

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(
            failure_threshold=2, window_seconds=5.0, cooldown_seconds=1.0
        )
        breaker.record_failure(0.0)
        breaker.record_failure(0.5)
        assert breaker.allow(1.6)
        assert breaker.record_failure(1.7)  # probe failed
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(2.0)
        assert breaker.allow(2.8)


class TestDegradationPolicy:
    def test_default_ladder_matches_the_legacy_pool(self):
        assert DegradationPolicy().ladder() == ("retry", "fallback", "shed")

    def test_full_ladder_order(self):
        policy = _policy(hedge=True)
        assert policy.ladder() == ("retry", "hedge", "respawn", "fallback", "shed")

    def test_shed_only_floor(self):
        policy = DegradationPolicy(max_retries=0, fallback=False)
        assert policy.ladder() == ("shed",)

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            DegradationPolicy(hedge_after_fraction=0.0)


class TestSupervisorLifecycle:
    def test_failure_schedules_backoff_respawn(self):
        supervisor = Supervisor(num_lanes=2, policy=_policy(), seed=0)
        assert supervisor.record_failure(0, 1.0, "crash") == "respawn"
        assert supervisor.lane_status(0) == LANE_RESPAWNING
        assert supervisor.due_respawns(1.05) == []  # backoff not elapsed
        assert supervisor.due_respawns(1.2) == [0]
        incarnation = supervisor.record_respawn_started(0, 1.2)
        assert incarnation == 1
        supervisor.record_ready(0, incarnation, 1.5)
        assert supervisor.lane_status(0) == LANE_UP
        assert supervisor.respawns == 1
        assert supervisor.recovery_seconds() == pytest.approx(0.5)
        assert supervisor.mttr_seconds() == pytest.approx(0.5)

    def test_stale_ready_is_ignored(self):
        supervisor = Supervisor(num_lanes=1, policy=_policy(), seed=0)
        supervisor.record_failure(0, 0.0, "crash")
        supervisor.record_respawn_started(0, 0.2)
        supervisor.record_ready(0, 0, 0.3)  # incarnation 0 is long gone
        assert supervisor.lane_status(0) == LANE_RESPAWNING

    def test_flapping_lane_quarantines_then_probes(self):
        supervisor = Supervisor(num_lanes=1, policy=_policy(), seed=0)
        # Three rapid failures: breaker (F=3, window 10s) trips on the third.
        assert supervisor.record_failure(0, 0.0, "crash") == "respawn"
        supervisor.record_respawn_started(0, 0.2)
        assert supervisor.record_failure(0, 0.4, "crash") == "respawn"
        supervisor.record_respawn_started(0, 0.8)
        assert supervisor.record_failure(0, 1.0, "crash") == "quarantine"
        assert supervisor.lane_status(0) == LANE_QUARANTINED
        assert supervisor.quarantined == 1
        assert supervisor.due_respawns(1.5) == []  # cooling down (2s)
        assert supervisor.due_respawns(3.1) == [0]  # half-open probe
        incarnation = supervisor.record_respawn_started(0, 3.1)
        supervisor.record_ready(0, incarnation, 3.3)
        supervisor.record_batch_success(0, 3.4)  # probe batch closes breaker
        assert supervisor.breaker_states()[0] == BREAKER_CLOSED
        assert supervisor.lanes[0].respawn_attempts == 0  # budget refreshed

    def test_respawn_budget_exhaustion_sheds(self):
        policy = _policy(max_respawns_per_lane=1, breaker_failures=10)
        supervisor = Supervisor(num_lanes=1, policy=policy, seed=0)
        assert supervisor.record_failure(0, 0.0, "crash") == "respawn"
        supervisor.record_respawn_started(0, 0.2)
        assert supervisor.record_failure(0, 0.4, "crash") == "shed"
        assert supervisor.lane_status(0) == LANE_DEAD
        assert not supervisor.respawn_pending()

    def test_respawn_disabled_is_shed_immediately(self):
        supervisor = Supervisor(num_lanes=1, policy=DegradationPolicy(), seed=0)
        assert supervisor.record_failure(0, 0.0, "crash") == "shed"
        assert supervisor.lane_status(0) == LANE_DEAD

    def test_event_signature_excludes_wall_time(self):
        def run(offset):
            supervisor = Supervisor(num_lanes=2, policy=_policy(), seed=9)
            supervisor.record_failure(1, offset + 0.1, "crash")
            supervisor.record_respawn_started(1, offset + 0.3)
            supervisor.record_ready(1, 1, offset + 0.4)
            supervisor.record_batch_success(1, offset + 0.5)
            return supervisor.event_signature()

        # Same logical history at different wall times: identical log.
        assert run(0.0) == run(1234.5)
