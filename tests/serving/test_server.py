"""End-to-end serving: the event loop, the cache path, admission shedding,
engine costing, and the checkpoint-layout bit-identity acceptance check."""

import os

import numpy as np
import pytest

from repro.core import save_model, save_sharded_model
from repro.gpusim import PHASE_PREPROCESSING, PHASE_SAMPLING, PHASE_TRANSFER
from repro.saberlda import SaberLDAConfig, train_saberlda
from repro.serving import (
    BatchScheduler,
    InferenceEngine,
    RequestOutcome,
    RequestQueue,
    ResultCache,
    ServingReport,
    TopicServer,
    engine_results_digest,
    layout_batch,
    make_requests,
    poisson_arrivals,
    warm_sampler_bank,
)
from repro.serving.queue import ServingRequest
from repro.telemetry import pinned_percentile

NUM_TOPICS = 6
SERVE_SEED = 31


def _report_with_latencies(latencies, cache_hit_latencies=()):
    """A minimal report whose latency multiset is exactly ``latencies``."""
    outcomes = [
        RequestOutcome(
            request_id=index,
            arrival_seconds=0.0,
            status="served",
            finish_seconds=latency,
        )
        for index, latency in enumerate(latencies)
    ]
    outcomes.extend(
        RequestOutcome(
            request_id=len(latencies) + index,
            arrival_seconds=0.0,
            status="cache_hit",
            finish_seconds=latency,
        )
        for index, latency in enumerate(cache_hit_latencies)
    )
    return ServingReport(
        outcomes=outcomes,
        batches=[],
        makespan_seconds=max([*latencies, *cache_hit_latencies], default=0.0),
        rejection_rate=0.0,
        mean_batch_docs=1.0,
        cache_hits=len(cache_hit_latencies),
        cache_lookups=len(outcomes),
    )


@pytest.fixture(scope="module")
def model(make_corpus):
    corpus = make_corpus(40, 100, 5, 30, 123)
    config = SaberLDAConfig.paper_defaults(
        NUM_TOPICS, num_iterations=3, num_chunks=4, seed=77, evaluate_every=3
    )
    result = train_saberlda(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
    )
    return result.model


@pytest.fixture()
def documents(rng):
    return [
        rng.integers(0, 100, size=int(rng.integers(5, 25))).astype(np.int32)
        for _ in range(30)
    ]


def _server(model, **overrides) -> TopicServer:
    engine = InferenceEngine.from_model(model, num_sweeps=6, seed=SERVE_SEED)
    defaults = dict(
        scheduler=BatchScheduler(max_batch_docs=4, max_wait_seconds=1e-5),
        queue=RequestQueue(max_depth=32),
        cache=ResultCache(capacity=100),
    )
    defaults.update(overrides)
    return TopicServer(engine, **defaults)


class TestServeLoop:
    def test_light_load_answers_everything(self, model, documents, rng):
        server = _server(model)
        arrivals = poisson_arrivals(1_000.0, len(documents), rng)
        report = server.serve(make_requests(documents, arrivals))
        assert report.answered == len(documents)
        assert report.rejected == 0
        assert report.p99_seconds >= report.p50_seconds > 0.0
        assert report.sustained_qps > 0.0
        assert len(report.outcomes) == len(documents)
        # Outcomes align with the offered requests in arrival order.
        assert [outcome.request_id for outcome in report.outcomes] == sorted(
            outcome.request_id for outcome in report.outcomes
        )

    def test_batched_results_match_unbatched_inference(self, model, documents, rng):
        """Batching is a scheduling decision, never a numeric one."""
        server = _server(model)
        arrivals = poisson_arrivals(50_000.0, len(documents), rng)
        report = server.serve(make_requests(documents, arrivals))
        assert max(execution.batch.num_documents for execution in report.batches) > 1
        reference = InferenceEngine.from_model(model, num_sweeps=6, seed=SERVE_SEED)
        for outcome, document in zip(report.outcomes, documents, strict=True):
            assert outcome.status == "served"
            expected = reference.infer_request(document, outcome.request_id).theta
            assert np.array_equal(outcome.theta, expected)

    def test_repeated_document_hits_the_cache(self, model, documents):
        server = _server(model)
        repeated = documents[:5] + [documents[0], documents[1]]
        arrivals = np.arange(1, len(repeated) + 1, dtype=np.float64)  # serial
        report = server.serve(make_requests(repeated, arrivals))
        statuses = [outcome.status for outcome in report.outcomes]
        assert statuses[-2:] == ["cache_hit", "cache_hit"]
        assert server.cache.hits == 2
        # The cached answer is the served answer, bit for bit.
        assert np.array_equal(report.outcomes[-2].theta, report.outcomes[0].theta)
        # Cache hits answer at arrival: zero latency on the simulated clock.
        assert report.outcomes[-2].latency_seconds == 0.0

    def test_burst_past_queue_depth_is_shed(self, model, documents):
        server = _server(
            model,
            queue=RequestQueue(max_depth=4),
            scheduler=BatchScheduler(max_batch_docs=4, max_wait_seconds=1e-3),
            cache=ResultCache(capacity=0),
        )
        arrivals = np.zeros(len(documents))  # everything at t=0
        report = server.serve(make_requests(documents, arrivals))
        assert report.rejected > 0
        assert report.answered + report.rejected == len(documents)
        for outcome in report.outcomes:
            if outcome.status == "rejected":
                assert outcome.theta is None
                assert outcome.latency_seconds is None

    def test_empty_request_stream(self, model):
        report = _server(model).serve([])
        assert report.answered == 0
        assert report.sustained_qps == 0.0
        # No answered requests -> no latency distribution: NaN, not 0.
        assert np.isnan(report.p50_seconds)

    def test_all_rejected_overload_has_nan_percentiles(self, model, documents):
        """Regression: a fully shed run must report NaN latency, not raise
        (or claim a zero-latency server) from an empty percentile array."""
        server = _server(
            model,
            queue=RequestQueue(max_depth=1),
            scheduler=BatchScheduler(max_batch_docs=1, max_wait_seconds=0.0),
            cache=ResultCache(capacity=0),
        )
        # Every word id is out of vocabulary: all rejected at admission.
        bad = [np.array([10_000], dtype=np.int32) for _ in documents]
        report = server.serve(make_requests(bad, np.zeros(len(bad))))
        assert report.answered == 0
        assert report.rejected == len(bad)
        assert np.isnan(report.latency_percentile(50.0))
        assert np.isnan(report.p99_seconds)
        assert np.isnan(report.mean_seconds)
        summary = report.summary()
        assert np.isnan(summary["p50_ms"]) and np.isnan(summary["p99_ms"])
        assert summary["rejection_rate"] == 1.0

    def test_single_sample_answers_every_percentile(self):
        """Pinned rule: one sample IS its whole latency distribution."""
        report = _report_with_latencies([0.125])
        for percentile in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert report.latency_percentile(percentile) == 0.125
        assert report.p50_seconds == report.p99_seconds == 0.125
        assert report.mean_seconds == 0.125

    def test_duplicate_latencies_answer_exactly(self):
        """Pinned rule: duplicated values come back bit-exactly, no drift."""
        report = _report_with_latencies([0.004, 0.004, 0.004])
        assert report.latency_percentile(50.0) == 0.004
        assert report.latency_percentile(99.0) == 0.004

    def test_percentiles_interpolate_linearly(self):
        """Pinned rule: NumPy's default linear interpolation between ranks."""
        report = _report_with_latencies([0.0, 0.010])
        assert report.latency_percentile(50.0) == 0.005
        report = _report_with_latencies([0.0, 0.001, 0.002, 0.003])
        assert report.latency_percentile(25.0) == 0.00075

    def test_shares_the_pinned_rule_with_telemetry(self):
        """One rule, two surfaces: report == pinned_percentile, bit for bit."""
        latencies = [0.0031, 0.0007, 0.0131, 0.0007, 0.0052]
        report = _report_with_latencies(latencies)
        for percentile in (50.0, 95.0, 99.0):
            assert report.latency_percentile(percentile) == pinned_percentile(
                latencies, percentile
            )

    def test_cache_hits_can_be_excluded_from_the_distribution(self):
        report = _report_with_latencies([0.010], cache_hit_latencies=[0.0, 0.0])
        # Hits count by default (latency 0), shifting the median down...
        assert report.latency_percentile(50.0) == 0.0
        # ...and drop out on request, leaving the served distribution.
        assert report.latency_percentile(50.0, include_cache_hits=False) == 0.010

    def test_malformed_request_is_refused_without_killing_the_batch(self, model, documents):
        """Out-of-vocabulary ids are refused at admission; everyone else in
        the stream is still served."""
        server = _server(model)
        stream = [documents[0], np.array([10_000], dtype=np.int32), documents[1]]
        report = server.serve(make_requests(stream, [0.0, 0.0, 0.0]))
        statuses = [outcome.status for outcome in report.outcomes]
        assert statuses[1] == "rejected"
        assert statuses[0] == statuses[2] == "served"
        assert report.rejection_rate == pytest.approx(1.0 / 3.0)

    def test_reports_snapshot_per_run_not_server_lifetime(self, model, documents):
        """Serving again through the same server must not bleed counters into
        an earlier report, nor an earlier run into the new report."""
        server = _server(
            model,
            queue=RequestQueue(max_depth=4),
            scheduler=BatchScheduler(max_batch_docs=4, max_wait_seconds=1e-3),
            cache=ResultCache(capacity=0),
        )
        burst = server.serve(make_requests(documents, np.zeros(len(documents))))
        assert burst.rejected > 0
        first_rate = burst.rejection_rate
        calm = server.serve(
            make_requests(documents, 1.0 + np.arange(len(documents)), first_request_id=1000)
        )
        assert calm.rejected == 0
        assert calm.rejection_rate == 0.0  # run 1's shedding must not leak in
        assert burst.rejection_rate == first_rate  # and report 1 is immutable


class TestMakespanRule:
    """Regression: the throughput span runs first arrival → last *answer*.

    The loop used to report ``max(last_answer, now) - first_arrival``,
    so a trailing arrival that admission rejected after the last answer
    stretched the span and silently deflated ``sustained_qps``.
    """

    def test_rejected_straggler_does_not_stretch_the_makespan(self, model, documents):
        server = _server(model, cache=ResultCache(capacity=0))
        stream = [documents[0], documents[1], np.array([10_000], dtype=np.int32)]
        report = server.serve(make_requests(stream, [0.0, 0.001, 100.0]))
        assert [outcome.status for outcome in report.outcomes] == [
            "served",
            "served",
            "rejected",
        ]
        last_answer = max(
            outcome.finish_seconds
            for outcome in report.outcomes
            if outcome.finish_seconds is not None
        )
        # Pre-fix: the clock had advanced to the rejected arrival at
        # t=100 and the span swallowed those ~100 idle seconds.
        assert report.makespan_seconds == last_answer
        assert report.makespan_seconds < 50.0
        assert report.sustained_qps == report.answered / report.makespan_seconds

    def test_trailing_cache_hit_is_an_answer_and_closes_the_span(
        self, model, documents
    ):
        server = _server(model)
        stream = [documents[0], documents[0]]
        report = server.serve(make_requests(stream, [0.0, 5.0]))
        assert [outcome.status for outcome in report.outcomes] == [
            "served",
            "cache_hit",
        ]
        # The hit answers at its arrival (t=5): it is the run's last
        # answer and must close the span there.
        assert report.makespan_seconds == 5.0
        assert report.sustained_qps == 2 / 5.0

    def test_nothing_answered_means_no_span(self, model):
        server = _server(model, cache=ResultCache(capacity=0))
        bad = [np.array([10_000], dtype=np.int32) for _ in range(3)]
        report = server.serve(make_requests(bad, [0.0, 1.0, 2.0]))
        assert report.answered == 0
        assert report.makespan_seconds == 0.0
        assert report.sustained_qps == 0.0


class TestRejectionAccounting:
    """Regression: validation sheds count in the queue's counters too.

    Rejections used to split across two disagreeing surfaces: queue
    overflow incremented ``RequestQueue.rejected`` but validation
    refusals bypassed the queue entirely, so ``queue.rejection_rate()``
    and ``ServingReport.rejection_rate`` told different stories about
    the same run.
    """

    def test_queue_and_report_rejection_rates_agree(self, model, documents):
        server = _server(
            model,
            queue=RequestQueue(max_depth=2),
            scheduler=BatchScheduler(max_batch_docs=2, max_wait_seconds=0.0),
            cache=ResultCache(capacity=0),
        )
        # A burst at t=0 mixing both shed kinds: queue overflow past
        # depth 2, and malformed word ids refused at validation.
        stream = [
            documents[0],
            documents[1],
            documents[2],
            np.array([10_000], dtype=np.int32),
            documents[3],
            np.array([-1, 5], dtype=np.int32),
        ]
        report = server.serve(make_requests(stream, np.zeros(len(stream))))
        assert server.queue.admitted == 2
        assert server.queue.rejected == 4  # 2 overflow + 2 validation sheds
        assert report.rejected == 4
        # One rule, one number: 4/6 on both surfaces, bit for bit.
        assert report.rejection_rate == server.queue.rejection_rate()

    def test_validation_only_run_agrees_too(self, model, documents):
        server = _server(model, cache=ResultCache(capacity=0))
        stream = [documents[0], np.array([10_000], dtype=np.int32)]
        report = server.serve(make_requests(stream, [0.0, 0.0]))
        assert report.rejected == 1
        assert report.rejection_rate == server.queue.rejection_rate() == 0.5


class TestEngineCosting:
    def _batch(self, documents, first_id=0):
        requests = [
            ServingRequest(
                request_id=first_id + position,
                word_ids=document,
                arrival_seconds=0.0,
            )
            for position, document in enumerate(documents)
        ]
        return layout_batch(requests, batch_id=0, dispatch_seconds=0.0)

    def test_phases_are_positive_and_complete(self, model, documents):
        engine = InferenceEngine.from_model(model, num_sweeps=6, seed=SERVE_SEED)
        execution = engine.execute(self._batch(documents[:4]))
        assert set(execution.phase_seconds) == {
            PHASE_SAMPLING,
            PHASE_PREPROCESSING,
            PHASE_TRANSFER,
        }
        assert execution.phase_seconds[PHASE_SAMPLING] > 0.0
        assert execution.phase_seconds[PHASE_PREPROCESSING] > 0.0  # cold bank
        assert execution.phase_seconds[PHASE_TRANSFER] > 0.0
        assert execution.seconds == pytest.approx(sum(execution.phase_seconds.values()))
        assert execution.samplers_built > 0

    def test_warm_bank_stops_paying_preprocessing(self, model, documents):
        engine = InferenceEngine.from_model(model, num_sweeps=6, seed=SERVE_SEED)
        first = engine.execute(self._batch(documents[:4]))
        second = engine.execute(self._batch(documents[:4], first_id=100))
        assert first.phase_seconds[PHASE_PREPROCESSING] > 0.0
        assert second.phase_seconds[PHASE_PREPROCESSING] == 0.0
        assert second.samplers_built == 0

    def test_warm_sampler_bank_prebuilds(self, model, documents):
        engine = InferenceEngine.from_model(model, num_sweeps=6, seed=SERVE_SEED)
        built = warm_sampler_bank(engine, np.concatenate(documents[:4]))
        assert built > 0
        execution = engine.execute(self._batch(documents[:4]))
        assert execution.samplers_built == 0

    def test_more_sweeps_cost_more_sampling(self, model, documents):
        few = InferenceEngine.from_model(model, num_sweeps=2, seed=SERVE_SEED)
        many = InferenceEngine.from_model(model, num_sweeps=20, seed=SERVE_SEED)
        batch = self._batch(documents[:4])
        assert (
            many.execute(batch).phase_seconds[PHASE_SAMPLING]
            > few.execute(batch).phase_seconds[PHASE_SAMPLING]
        )


class TestCheckpointLayoutEquivalence:
    """Acceptance: one seeded query set, three checkpoint layouts, one digest."""

    def test_bit_identical_across_plain_row_and_column_checkpoints(
        self, model, documents, tmp_path
    ):
        plain = save_model(model, os.path.join(tmp_path, "plain"))
        rows = save_sharded_model(
            model, os.path.join(tmp_path, "rows"), num_shards=3, axis="rows"
        )
        columns = save_sharded_model(
            model, os.path.join(tmp_path, "cols"), num_shards=4, axis="columns"
        )
        digests = {}
        thetas = {}
        for label, path in (("plain", plain), ("rows", rows), ("columns", columns)):
            engine = InferenceEngine.from_checkpoint(path, num_sweeps=6, seed=SERVE_SEED)
            results = [
                engine.infer_request(document, request_id=position)
                for position, document in enumerate(documents)
            ]
            digests[label] = engine_results_digest(results)
            thetas[label] = [result.theta for result in results]
        assert digests["plain"] == digests["rows"] == digests["columns"]
        for plain_theta, column_theta in zip(thetas["plain"], thetas["columns"], strict=True):
            assert np.array_equal(plain_theta, column_theta)

    def test_served_traffic_is_layout_invariant_too(self, model, documents, tmp_path):
        """The whole server path — batching and all — agrees across layouts."""
        columns = save_sharded_model(
            model, os.path.join(tmp_path, "cols"), num_shards=4, axis="columns"
        )
        arrivals = np.linspace(0.0, 1e-3, len(documents))
        from_model = _server(model)
        from_checkpoint = TopicServer(
            InferenceEngine.from_checkpoint(columns, num_sweeps=6, seed=SERVE_SEED),
            scheduler=BatchScheduler(max_batch_docs=4, max_wait_seconds=1e-5),
            queue=RequestQueue(max_depth=32),
            cache=ResultCache(capacity=100),
        )
        first = from_model.serve(make_requests(documents, arrivals))
        second = from_checkpoint.serve(make_requests(documents, arrivals))
        for left, right in zip(first.outcomes, second.outcomes, strict=True):
            assert left.status == right.status
            if left.theta is not None:
                assert np.array_equal(left.theta, right.theta)
