"""Open-loop wall-clock serving: TopicServer over a real WorkerPool.

The measured open-loop plane must keep every promise the simulated one
makes: digest bit-identity at the same seed, real cache hits through the
same ResultCache, one admission/rejection rule across surfaces, and a
report whose field set diffs cleanly against the simulated run.
"""

import numpy as np
import pytest

from repro.core import LDAHyperParams, save_model_mmap
from repro.core.model import LDAModel
from repro.evaluation.serving import REPORT_FIELDS, report_field_comparison
from repro.serving import (
    BatchScheduler,
    InferenceEngine,
    RequestQueue,
    ResultCache,
    TopicServer,
    WallClockReport,
    WorkerPool,
    make_requests,
    poisson_arrivals,
    pool_results_digest,
)
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    WallClock,
    pinned_percentile,
    span_coverage,
)

NUM_TOPICS = 6
VOCABULARY = 80
SEED = 13
NUM_SWEEPS = 3


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    rng = np.random.default_rng(SEED)
    counts = rng.integers(0, 30, size=(VOCABULARY, NUM_TOPICS)).astype(np.int64)
    model = LDAModel(
        word_topic_counts=counts,
        params=LDAHyperParams(num_topics=NUM_TOPICS, alpha=0.1, beta=0.01),
    )
    directory = str(tmp_path_factory.mktemp("ckpt") / "model")
    return save_model_mmap(model, directory)


@pytest.fixture(scope="module")
def documents():
    rng = np.random.default_rng(SEED + 1)
    return [
        rng.integers(0, VOCABULARY, size=int(rng.integers(4, 14))).astype(np.int32)
        for _ in range(20)
    ]


def _requests(documents, rate_qps=400.0, seed=SEED + 2):
    arrivals = poisson_arrivals(rate_qps, len(documents), np.random.default_rng(seed))
    return make_requests(documents, arrivals)


def _server(pool, **overrides) -> TopicServer:
    defaults = dict(
        scheduler=BatchScheduler(max_batch_docs=4, max_wait_seconds=0.002),
        queue=RequestQueue(max_depth=None),
        cache=ResultCache(capacity=0),
    )
    defaults.update(overrides)
    return TopicServer(pool, **defaults)


class TestOpenLoopHappyPath:
    def test_serve_dispatches_to_the_wallclock_plane(self, checkpoint, documents):
        requests = _requests(documents)
        with WorkerPool(checkpoint, num_workers=2, seed=SEED, num_sweeps=NUM_SWEEPS) as pool:
            server = _server(pool)
            report = server.serve(requests)
            stats = pool.stats()
        assert isinstance(report, WallClockReport)
        assert report.answered == len(requests)
        assert report.rejected == 0
        assert report.wall_seconds > 0.0
        assert report.sustained_qps > 0.0
        assert report.p99_seconds >= report.p50_seconds > 0.0
        assert stats["admitted"] == stats["answered"] + stats["failed"] + stats["pending"]
        assert stats["pending"] == 0
        # Outcomes come back in arrival order, one per offered request.
        assert [outcome.request_id for outcome in report.outcomes] == [
            request.request_id for request in requests
        ]

    def test_bit_identical_to_the_simulated_open_loop_run(self, checkpoint, documents):
        """Same stream, same seed: measured and simulated runs agree on
        every theta byte — wall-clock pacing is a scheduling decision,
        never a numeric one."""
        requests = _requests(documents)
        with WorkerPool(checkpoint, num_workers=2, seed=SEED, num_sweeps=NUM_SWEEPS) as pool:
            measured = _server(pool).serve(requests)
        engine = InferenceEngine.from_mmap_checkpoint(
            checkpoint, seed=SEED, num_sweeps=NUM_SWEEPS, mmap_mode=None
        )
        simulated = _server(engine).serve(requests)
        assert measured.answered == simulated.answered == len(requests)
        assert pool_results_digest(measured.outcomes) == pool_results_digest(
            simulated.outcomes
        )

    def test_open_loop_latency_includes_queue_wait(self, checkpoint, documents):
        """One lane and a tight arrival burst: later requests must carry
        their queue wait (open-loop discipline), so latency grows along
        the stream instead of staying one batch."""
        requests = make_requests(documents[:8], np.zeros(8))
        with WorkerPool(checkpoint, num_workers=1, seed=SEED, num_sweeps=NUM_SWEEPS) as pool:
            server = _server(
                pool, scheduler=BatchScheduler(max_batch_docs=2, max_wait_seconds=0.0)
            )
            report = server.serve(requests)
        latencies = [outcome.latency_seconds for outcome in report.outcomes]
        assert max(latencies) > min(latencies)
        assert report.mean_batch_docs <= 2.0


class TestOpenLoopCache:
    def test_repeated_documents_hit_the_real_cache(self, checkpoint, documents):
        # Repeats arrive well after the originals answered: guaranteed hits.
        stream = documents[:6] + documents[:3]
        arrivals = [0.01 * index for index in range(6)] + [0.8, 0.81, 0.82]
        requests = make_requests(stream, arrivals)
        with WorkerPool(checkpoint, num_workers=2, seed=SEED, num_sweeps=NUM_SWEEPS) as pool:
            server = _server(pool, cache=ResultCache(capacity=32))
            report = server.serve(requests)
        assert report.cache_hits == 3
        assert report.cache_lookups == 9
        assert report.cache_hit_rate == 3 / 9
        hit_outcomes = [o for o in report.outcomes if o.status == "cache_hit"]
        assert len(hit_outcomes) == 3
        for hit, original in zip(hit_outcomes, report.outcomes[:3], strict=True):
            assert np.array_equal(hit.theta, original.theta)
        # Hits are answers: they count into answered and the summary.
        assert report.answered == len(requests)
        assert report.summary()["cache_hits"] == 3

    def test_closed_loop_report_still_reads_zero(self, checkpoint, documents):
        from repro.serving import serve_wallclock

        requests = make_requests(documents[:6], np.zeros(6))
        with WorkerPool(checkpoint, num_workers=1, seed=SEED, num_sweeps=NUM_SWEEPS) as pool:
            report = serve_wallclock(pool, requests, batch_docs=3)
        assert report.cache_hits == 0
        assert report.cache_lookups == 0
        assert report.cache_hit_rate == 0.0


class TestOpenLoopAdmission:
    def test_validation_sheds_agree_across_surfaces(self, checkpoint, documents):
        stream = [documents[0], np.array([10_000], dtype=np.int32), documents[1]]
        requests = make_requests(stream, [0.0, 0.001, 0.002])
        with WorkerPool(checkpoint, num_workers=1, seed=SEED, num_sweeps=NUM_SWEEPS) as pool:
            server = _server(pool)
            report = server.serve(requests)
            queue_rate = server.queue.rejection_rate()
        assert [outcome.status for outcome in report.outcomes] == [
            "answered",
            "rejected",
            "answered",
        ]
        assert report.rejection_rate == queue_rate == pytest.approx(1 / 3)
        # The malformed request never reached the pool.
        assert report.pool_stats["admitted"] == 2

    def test_queue_overflow_sheds_load(self, checkpoint, documents):
        requests = make_requests(documents[:10], np.zeros(10))
        with WorkerPool(checkpoint, num_workers=1, seed=SEED, num_sweeps=NUM_SWEEPS) as pool:
            server = _server(
                pool,
                queue=RequestQueue(max_depth=2),
                scheduler=BatchScheduler(max_batch_docs=2, max_wait_seconds=0.0),
            )
            report = server.serve(requests)
        assert report.rejected > 0
        assert report.answered + report.rejected == len(requests)
        assert report.rejection_rate == pytest.approx(
            report.rejected / len(requests)
        )

    def test_unstarted_pool_is_refused(self, checkpoint, documents):
        pool = WorkerPool(checkpoint, num_workers=0, seed=SEED)
        server = _server(pool)
        with pytest.raises(RuntimeError, match="start"):
            server.serve(_requests(documents[:2]))


class TestOpenLoopTelemetry:
    def test_trace_reproduces_the_report_percentiles(self, checkpoint, documents):
        tracer = Tracer(WallClock())
        metrics = MetricsRegistry()
        requests = _requests(documents)
        with WorkerPool(checkpoint, num_workers=2, seed=SEED, num_sweeps=NUM_SWEEPS) as pool:
            server = _server(pool, tracer=tracer, metrics=metrics)
            report = server.serve(requests)
        durations = [
            span.duration_seconds for span in tracer.spans if span.name == "request"
        ]
        assert len(durations) == report.answered
        assert pinned_percentile(durations, 50.0) == report.p50_seconds
        assert pinned_percentile(durations, 99.0) == report.p99_seconds
        # The root span covers exactly the reported span: full coverage.
        assert span_coverage(tracer.spans, report.wall_seconds) >= 0.99
        assert metrics.counter("serving.admitted").value == len(requests)

    def test_untraced_run_stays_silent(self, checkpoint, documents):
        with WorkerPool(checkpoint, num_workers=1, seed=SEED, num_sweeps=NUM_SWEEPS) as pool:
            server = _server(pool)
            server.serve(_requests(documents[:4]))
            assert server.tracer.spans == []


class TestUnifiedReportContract:
    def test_every_shared_field_diffs_cleanly(self, checkpoint, documents):
        requests = _requests(documents)
        with WorkerPool(checkpoint, num_workers=2, seed=SEED, num_sweeps=NUM_SWEEPS) as pool:
            measured = _server(pool).serve(requests)
        engine = InferenceEngine.from_mmap_checkpoint(
            checkpoint, seed=SEED, num_sweeps=NUM_SWEEPS, mmap_mode=None
        )
        simulated = _server(engine).serve(requests)
        rows = report_field_comparison(simulated, measured)
        assert [row["field"] for row in rows] == list(REPORT_FIELDS)
        by_field = {row["field"]: row for row in rows}
        # Structural fields agree across planes; latency fields need not.
        for name in ("answered", "rejected", "rejection_rate", "cache_hits",
                     "cache_lookups", "cache_hit_rate"):
            assert by_field[name]["equal"], by_field[name]
