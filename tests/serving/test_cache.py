"""Result cache: digest semantics, LRU behaviour, counters."""

import numpy as np
import pytest

from repro.serving import ResultCache, document_digest


class TestDocumentDigest:
    def test_stable_across_calls_and_dtypes(self):
        assert document_digest([1, 2, 3]) == document_digest(np.array([1, 2, 3], dtype=np.int32))

    def test_sensitive_to_order_and_content(self):
        base = document_digest([1, 2, 3])
        assert document_digest([3, 2, 1]) != base
        assert document_digest([1, 2, 4]) != base
        assert document_digest([1, 2]) != base

    def test_length_prefix_separates_concatenations(self):
        # Without the length prefix [1] + [2] and [1, 2] could collide
        # across adjacent cache keys built from raw byte concatenation.
        assert document_digest([]) != document_digest([0])


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        digest = document_digest([1, 2])
        assert cache.get(digest) is None
        cache.put(digest, np.array([0.5, 0.5]))
        hit = cache.get(digest)
        assert hit is not None
        assert hit == pytest.approx([0.5, 0.5])
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_prefers_recently_used(self):
        cache = ResultCache(capacity=2)
        a, b, c = (document_digest([i]) for i in range(3))
        cache.put(a, np.array([1.0]))
        cache.put(b, np.array([2.0]))
        cache.get(a)  # refresh a
        cache.put(c, np.array([3.0]))  # evicts b
        assert cache.get(a) is not None
        assert cache.get(b) is None
        assert cache.get(c) is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(capacity=0)
        digest = document_digest([7])
        cache.put(digest, np.array([1.0]))
        assert cache.get(digest) is None
        assert len(cache) == 0

    def test_cached_theta_is_frozen(self):
        cache = ResultCache(capacity=2)
        digest = document_digest([1])
        cache.put(digest, np.array([0.25, 0.75]))
        entry = cache.get(digest)
        with pytest.raises(ValueError):
            entry[0] = 0.9

    def test_put_copies_the_input(self):
        cache = ResultCache(capacity=2)
        digest = document_digest([1])
        theta = np.array([0.25, 0.75])
        cache.put(digest, theta)
        theta[0] = 0.9  # mutating the caller's array must not leak in
        assert cache.get(digest) == pytest.approx([0.25, 0.75])

    def test_refresh_of_existing_digest_keeps_size_and_counters(self):
        # Re-putting a resident digest at full capacity is a refresh, not
        # an insert: the size must not change, nothing may be evicted,
        # and the refreshed entry becomes the most recently used.
        cache = ResultCache(capacity=2)
        a, b = (document_digest([i]) for i in range(2))
        cache.put(a, np.array([1.0]))
        cache.put(b, np.array([2.0]))
        cache.put(a, np.array([1.5]))  # refresh a with a new value
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get(a) == pytest.approx([1.5])
        # a was refreshed after b's insert, so b is now the LRU victim.
        cache.put(document_digest([9]), np.array([3.0]))
        assert cache.get(b) is None
        assert cache.get(a) is not None
        assert cache.evictions == 1

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_stats_shape(self):
        cache = ResultCache(capacity=3)
        stats = cache.stats()
        assert set(stats) == {"size", "capacity", "hits", "misses", "evictions", "hit_rate"}
