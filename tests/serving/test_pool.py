"""Multi-engine serving pool: construction, dispatch, cost attribution,
and the cross-layout x cross-strategy bit-identity matrix (golden-pinned).

Regenerate the golden file (only when a statistical change to fold-in is
intentional) with::

    PYTHONPATH=src python tests/serving/test_pool.py --regenerate
"""

import json
import os

import numpy as np
import pytest

from repro.core import save_model, save_sharded_model
from repro.distributed import plan_topic_shards
from repro.saberlda import SaberLDAConfig, train_saberlda
from repro.serving import (
    BatchScheduler,
    EnginePool,
    InferenceEngine,
    RequestQueue,
    ResultCache,
    TopicServer,
    make_requests,
    pool_results_digest,
)
from repro.serving.pool import PHASE_ALLTOALL
from repro.serving.scheduler import layout_batch
from repro.serving.queue import ServingRequest

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "golden",
    "serving_pool.json",
)

#: The pinned workload (same corpus family as the fold-in golden).
CORPUS_SPEC = dict(
    num_documents=40, vocabulary_size=100, num_topics=5, mean_document_length=30, seed=123
)
NUM_TOPICS = 6
TRAIN_SEED = 77
SERVE_SEED = 31
NUM_SWEEPS = 6
NUM_QUERIES = 18
THETA_DECIMALS = 12

#: The matrix axes of the acceptance test.
LAYOUTS = ("plain", "rows", "columns")
EXECUTORS = ("single", "replicated", "topic_sharded")
POOL_ENGINES = 3


def _train_model(make_corpus):
    corpus = make_corpus(**CORPUS_SPEC)
    config = SaberLDAConfig.paper_defaults(
        NUM_TOPICS, num_iterations=3, num_chunks=4, seed=TRAIN_SEED, evaluate_every=3
    )
    result = train_saberlda(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
    )
    return corpus, result.model


def _queries(corpus):
    rng = np.random.default_rng(SERVE_SEED)
    picks = rng.choice(corpus.num_documents, size=NUM_QUERIES, replace=False)
    return [
        corpus.tokens.word_ids[corpus.tokens.doc_ids == doc_id] for doc_id in picks
    ]


def _executor(kind: str, source):
    """Build the executor under test from a model or a checkpoint path."""
    kwargs = dict(num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
    from_path = isinstance(source, str)
    if kind == "single":
        if from_path:
            return InferenceEngine.from_checkpoint(source, **kwargs)
        return InferenceEngine.from_model(source, **kwargs)
    if from_path:
        return EnginePool.from_checkpoint(source, POOL_ENGINES, strategy=kind, **kwargs)
    if kind == "replicated":
        return EnginePool.replicated(source, POOL_ENGINES, **kwargs)
    return EnginePool.topic_sharded(source, POOL_ENGINES, **kwargs)


def _serve(executor, documents):
    server = TopicServer(
        executor,
        scheduler=BatchScheduler(max_batch_docs=4, max_wait_seconds=1e-5),
        queue=RequestQueue(max_depth=None),  # never shed: every combo answers all
        cache=ResultCache(capacity=0),  # every request exercises the engines
    )
    arrivals = np.linspace(0.0, 1e-3, len(documents))
    return server.serve(make_requests(documents, arrivals))


@pytest.fixture(scope="module")
def trained(make_corpus):
    return _train_model(make_corpus)


@pytest.fixture(scope="module")
def model(trained):
    return trained[1]


@pytest.fixture(scope="module")
def documents(trained):
    return _queries(trained[0])


@pytest.fixture(scope="module")
def checkpoints(model, tmp_path_factory):
    root = tmp_path_factory.mktemp("pool_ckpts")
    return {
        "plain": save_model(model, os.path.join(root, "plain")),
        "rows": save_sharded_model(
            model, os.path.join(root, "rows"), num_shards=3, axis="rows"
        ),
        "columns": save_sharded_model(
            model, os.path.join(root, "cols"), num_shards=4, axis="columns"
        ),
    }


class TestPoolConstruction:
    def test_every_lane_inherits_the_kernel_backend(self, model):
        from repro.kernels import KernelBackend

        pool = EnginePool.replicated(
            model, 3, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED, backend="reference"
        )
        assert all(
            engine.state.backend is KernelBackend.REFERENCE
            for engine in pool.engines
        )

    def test_vectorized_lanes_share_one_phi_cdf(self, model):
        """Replicas must not hold N copies of the dense V x K prefix matrix."""
        pool = EnginePool.replicated(model, 3, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
        shared = pool.engines[0].state.bank.phi_cdf
        assert all(engine.state.bank.phi_cdf is shared for engine in pool.engines)

    def test_rejects_unknown_strategy(self, model):
        engine = InferenceEngine.from_model(model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
        with pytest.raises(ValueError, match="strategy"):
            EnginePool(engines=[engine], strategy="sharded-ish")

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError, match="at least one engine"):
            EnginePool(engines=[], strategy="replicated")

    def test_replicated_lanes_must_share_seed_and_sweeps(self, model):
        first = InferenceEngine.from_model(model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
        second = InferenceEngine.from_model(model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED + 1)
        with pytest.raises(ValueError, match="bit-identity"):
            EnginePool(engines=[first, second], strategy="replicated")

    def test_replicated_lanes_must_serve_the_same_model(self, model, trained):
        corpus, _model = trained
        config = SaberLDAConfig.paper_defaults(
            NUM_TOPICS, num_iterations=2, num_chunks=4, seed=TRAIN_SEED + 1, evaluate_every=2
        )
        other = train_saberlda(
            corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
        ).model
        engines = [
            InferenceEngine.from_model(m, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
            for m in (model, other)
        ]
        with pytest.raises(ValueError, match="same frozen model"):
            EnginePool(engines=engines, strategy="replicated")

    def test_topic_sharding_needs_a_column_per_engine(self, model):
        with pytest.raises(ValueError, match="column per engine"):
            EnginePool.topic_sharded(model, NUM_TOPICS + 1, seed=SERVE_SEED)

    def test_replicated_lanes_share_frozen_state_but_not_banks(self, model):
        pool = EnginePool.replicated(model, 3, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
        first = pool.engines[0]
        for engine in pool.engines[1:]:
            assert engine.state.phi is first.state.phi  # one B-hat, shared
            assert engine.state.prior_mass is first.state.prior_mass
            assert engine.state.bank is not first.state.bank  # warmth is per lane
        # Warming one lane must not warm another.
        pool.engines[0].state.bank.sampler(0)
        assert pool.engines[0].state.bank.builds == 1
        assert pool.engines[1].state.bank.builds == 0

    def test_lane_counts_per_strategy(self, model):
        replicated = EnginePool.replicated(model, 4, seed=SERVE_SEED)
        sharded = EnginePool.topic_sharded(model, 3, seed=SERVE_SEED)
        assert (replicated.num_engines, replicated.num_lanes) == (4, 4)
        # A sharded pool has N engines cooperating on one batch at a time.
        assert (sharded.num_engines, sharded.num_lanes) == (3, 1)

    def test_sharded_pool_shrinks_per_engine_model_bytes(self, model):
        replicated = EnginePool.replicated(model, 3, seed=SERVE_SEED)
        sharded = EnginePool.topic_sharded(model, 3, seed=SERVE_SEED)
        full = replicated.model_bytes_per_engine()
        assert sharded.model_bytes_per_engine() < full
        # The widest slice is ceil(K/N) of the columns.
        assert sharded.model_bytes_per_engine() == pytest.approx(full * 2 / NUM_TOPICS)

    def test_slice_columns_tiles_the_matrix(self, model):
        plan = plan_topic_shards(NUM_TOPICS, 3)
        matrix = model.word_topic_counts
        slices = [plan.slice_columns(matrix, d) for d in range(plan.num_devices)]
        assert sum(block.shape[1] for block in slices) == NUM_TOPICS
        assert np.array_equal(np.concatenate(slices, axis=1), matrix)
        with pytest.raises(ValueError, match="columns"):
            plan.slice_columns(matrix[:, :-1], 0)

    def test_phi_shards_tile_the_frozen_state(self, model):
        sharded = EnginePool.topic_sharded(model, 3, seed=SERVE_SEED)
        shards = [sharded.phi_shard(d) for d in range(sharded.num_engines)]
        assert np.array_equal(
            np.concatenate(shards, axis=1), sharded.engines[0].state.phi
        )
        # The widest resident slice is exactly what the memory stat sizes.
        widest = max(block.shape[1] for block in shards)
        assert sharded.model_bytes_per_engine() == pytest.approx(
            model.vocabulary_size * widest * 4
        )
        replicated = EnginePool.replicated(model, 2, seed=SERVE_SEED)
        with pytest.raises(ValueError, match="topic-sharded"):
            replicated.phi_shard(0)


class TestPoolExecution:
    def _batch(self, documents, first_id=0):
        requests = [
            ServingRequest(
                request_id=first_id + position, word_ids=doc, arrival_seconds=0.0
            )
            for position, doc in enumerate(documents)
        ]
        return layout_batch(requests, batch_id=0, dispatch_seconds=0.0)

    def test_replicated_execution_matches_single_engine(self, model, documents):
        pool = EnginePool.replicated(model, 2, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
        single = InferenceEngine.from_model(model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
        batch = self._batch(documents[:4])
        pooled = pool.execute(batch, lane=1)
        reference = single.execute(batch)
        assert pooled.engine_id == 1
        assert pooled.alltoall_seconds == 0.0
        assert pooled.seconds == pytest.approx(reference.seconds)
        for left, right in zip(pooled.results, reference.results, strict=True):
            assert np.array_equal(left.theta, right.theta)

    def test_sharded_execution_charges_the_alltoall(self, model, documents):
        pool = EnginePool.topic_sharded(model, 3, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
        single = InferenceEngine.from_model(model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
        batch = self._batch(documents[:4])
        pooled = pool.execute(batch)
        reference = single.execute(batch)
        assert pooled.engine_id == -1
        assert pooled.participants == [0, 1, 2]
        assert len(pooled.per_engine_phase_seconds) == 3
        assert pooled.alltoall_seconds > 0.0
        assert PHASE_ALLTOALL in pooled.phase_seconds
        # Each shard samples ~K/N columns, so the compute barrier is
        # cheaper than the full-width single engine; the exchange is the
        # price, charged on top.
        assert pooled.barrier_seconds < reference.seconds
        assert pooled.seconds == pytest.approx(
            pooled.barrier_seconds + pooled.alltoall_seconds
        )
        # And the mathematics are untouched by the cost attribution.
        for left, right in zip(pooled.results, reference.results, strict=True):
            assert np.array_equal(left.theta, right.theta)

    def test_least_loaded_lane_selection(self, model):
        pool = EnginePool.replicated(model, 3, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
        pool.busy_seconds = [5.0, 1.0, 3.0]
        assert pool.select_lane([0, 1, 2]) == 1
        assert pool.select_lane([0, 2]) == 2
        pool.busy_seconds = [2.0, 2.0, 2.0]
        assert pool.select_lane([2, 0]) == 0  # deterministic tie-break by id

    def test_burst_drains_faster_with_more_lanes(self, model, documents):
        """The replicated pool's whole point: N engines drain a burst ~N
        times faster than one (same batches, run concurrently)."""
        arrivals = np.zeros(len(documents))

        def makespan(executor):
            server = TopicServer(
                executor,
                scheduler=BatchScheduler(max_batch_docs=2, max_wait_seconds=0.0),
                queue=RequestQueue(max_depth=None),
                cache=ResultCache(capacity=0),
            )
            report = server.serve(make_requests(documents, arrivals))
            assert report.answered == len(documents)
            return report.makespan_seconds

        single = makespan(InferenceEngine.from_model(model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED))
        quad = makespan(EnginePool.replicated(model, 4, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED))
        assert quad < single / 2  # 4 lanes must at least halve the drain time

    def test_scheduler_counts_dispatches_per_lane(self, model, documents):
        pool = EnginePool.replicated(model, 3, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)
        server = TopicServer(
            pool,
            scheduler=BatchScheduler(max_batch_docs=2, max_wait_seconds=0.0),
            queue=RequestQueue(max_depth=None),
            cache=ResultCache(capacity=0),
        )
        report = server.serve(make_requests(documents, np.zeros(len(documents))))
        lanes = server.scheduler.lane_dispatches
        assert sum(lanes.values()) == server.scheduler.batches_dispatched
        assert len(lanes) == 3  # every lane got work under the burst
        assert pool.batches_executed == len(report.batches)
        assert pool.documents_executed == len(documents)
        assert all(seconds > 0.0 for seconds in pool.busy_seconds)


class TestCrossLayoutCrossStrategyMatrix:
    """Acceptance: {plain, rows, columns} checkpoints x {single engine,
    replicated pool, topic-sharded pool} — one digest, pinned by golden."""

    @pytest.fixture(scope="class")
    def golden(self):
        if not os.path.exists(GOLDEN_PATH):
            pytest.fail(
                f"golden file missing: {GOLDEN_PATH}; generate it with "
                "`PYTHONPATH=src python tests/serving/test_pool.py --regenerate`"
            )
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            return json.load(handle)

    @pytest.fixture(scope="class")
    def reports(self, checkpoints, documents):
        return {
            (layout, executor): _serve(_executor(executor, checkpoints[layout]), documents)
            for layout in LAYOUTS
            for executor in EXECUTORS
        }

    def test_one_digest_across_the_whole_matrix(self, reports):
        digests = {
            combo: pool_results_digest(report.outcomes)
            for combo, report in reports.items()
        }
        assert len(set(digests.values())) == 1, f"serving diverged: {digests}"

    def test_every_combo_answers_everything(self, reports, documents):
        for combo, report in reports.items():
            assert report.answered == len(documents), combo
            assert report.rejected == 0, combo

    def test_thetas_match_the_golden_file(self, golden, reports):
        report = reports[("plain", "single")]
        for outcome, pinned in zip(report.outcomes, golden["thetas"], strict=True):
            measured = [round(float(v), THETA_DECIMALS) for v in outcome.theta]
            assert measured == pytest.approx(pinned, abs=10**-THETA_DECIMALS)

    def test_matrix_shape_is_pinned(self, golden):
        assert golden["layouts"] == list(LAYOUTS)
        assert golden["executors"] == list(EXECUTORS)
        assert golden["num_queries"] == NUM_QUERIES


def _regenerate():
    from repro.corpus import generate_lda_corpus

    corpus = generate_lda_corpus(**CORPUS_SPEC)
    cache = {}

    def make_corpus(**spec):
        return cache.setdefault(tuple(sorted(spec.items())), corpus)

    _corpus, model = _train_model(make_corpus)
    documents = _queries(corpus)
    report = _serve(_executor("single", model), documents)
    payload = {
        "format": "saberlda-serving-pool-golden",
        "corpus": CORPUS_SPEC,
        "num_topics": NUM_TOPICS,
        "train_seed": TRAIN_SEED,
        "serve_seed": SERVE_SEED,
        "num_sweeps": NUM_SWEEPS,
        "pool_engines": POOL_ENGINES,
        "layouts": list(LAYOUTS),
        "executors": list(EXECUTORS),
        "num_queries": NUM_QUERIES,
        "thetas": [
            [round(float(v), THETA_DECIMALS) for v in outcome.theta]
            for outcome in report.outcomes
        ],
    }
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH} ({len(payload['thetas'])} thetas)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
