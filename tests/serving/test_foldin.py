"""Fold-in inference: determinism (golden-pinned), convergence, sampler bank.

Regenerate the golden file (only when a statistical change to fold-in is
intentional) with::

    PYTHONPATH=src python tests/serving/test_foldin.py --regenerate
"""

import json
import os

import numpy as np
import pytest

from repro.core import LDAHyperParams, LDAModel
from repro.kernels import KernelBackend
from repro.sampling.alias_table import AliasTable
from repro.saberlda import PreprocessKind, SaberLDAConfig, train_saberlda
from repro.serving import (
    InferenceEngine,
    WordSamplerBank,
    fold_in_proximity,
    request_rng,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "golden",
    "serving_fold_in.json",
)

#: The pinned workload.
CORPUS_SPEC = dict(
    num_documents=40, vocabulary_size=100, num_topics=5, mean_document_length=30, seed=123
)
NUM_TOPICS = 6
TRAIN_SEED = 77
SERVE_SEED = 31
NUM_SWEEPS = 12
NUM_GOLDEN_QUERIES = 6
THETA_DECIMALS = 12


def _train_model(make_corpus):
    corpus = make_corpus(**CORPUS_SPEC)
    config = SaberLDAConfig.paper_defaults(
        NUM_TOPICS, num_iterations=3, num_chunks=4, seed=TRAIN_SEED, evaluate_every=3
    )
    result = train_saberlda(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
    )
    return corpus, result


def _golden_queries(corpus):
    rng = np.random.default_rng(SERVE_SEED)
    picks = rng.choice(corpus.num_documents, size=NUM_GOLDEN_QUERIES, replace=False)
    return [
        corpus.tokens.word_ids[corpus.tokens.doc_ids == doc_id] for doc_id in picks
    ]


def _golden_thetas(engine, queries):
    return [
        [
            round(float(value), THETA_DECIMALS)
            for value in engine.infer_request(query, request_id=position).theta
        ]
        for position, query in enumerate(queries)
    ]


@pytest.fixture(scope="module")
def trained(make_corpus):
    return _train_model(make_corpus)


@pytest.fixture(scope="module")
def engine(trained):
    _corpus, result = trained
    return InferenceEngine.from_model(result.model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED)


class TestGoldenFoldIn:
    """Seeded fold-in topic distributions are pinned bit-for-bit."""

    @pytest.fixture(scope="class")
    def golden(self):
        if not os.path.exists(GOLDEN_PATH):
            pytest.fail(
                f"golden file missing: {GOLDEN_PATH}; generate it with "
                "`PYTHONPATH=src python tests/serving/test_foldin.py --regenerate`"
            )
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def test_thetas_unchanged(self, golden, trained, engine):
        corpus, _result = trained
        thetas = _golden_thetas(engine, _golden_queries(corpus))
        assert len(thetas) == len(golden["thetas"])
        for measured, pinned in zip(thetas, golden["thetas"], strict=True):
            assert measured == pytest.approx(pinned, abs=10**-THETA_DECIMALS)

    def test_workload_spec_unchanged(self, golden):
        assert golden["corpus"] == CORPUS_SPEC
        assert golden["num_topics"] == NUM_TOPICS
        assert golden["num_sweeps"] == NUM_SWEEPS
        assert golden["serve_seed"] == SERVE_SEED

    def test_reference_backend_reproduces_the_golden_thetas(self, golden, trained):
        """The `engine` fixture serves the (default) vectorized backend;
        the reference backend must pin to the same golden file — the
        two executions are bit-identical by contract."""
        corpus, result = trained
        engine = InferenceEngine.from_model(
            result.model,
            num_sweeps=NUM_SWEEPS,
            seed=SERVE_SEED,
            backend=KernelBackend.REFERENCE,
        )
        thetas = _golden_thetas(engine, _golden_queries(corpus))
        for measured, pinned in zip(thetas, golden["thetas"], strict=True):
            assert measured == pytest.approx(pinned, abs=10**-THETA_DECIMALS)


class TestDeterminism:
    def test_same_request_id_is_bit_identical(self, trained):
        _corpus, result = trained
        query = [3, 5, 5, 9, 40, 2, 7]
        first = InferenceEngine.from_model(
            result.model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED
        ).infer_request(query, request_id=4)
        second = InferenceEngine.from_model(
            result.model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED
        ).infer_request(query, request_id=4)
        assert np.array_equal(first.theta, second.theta)
        assert np.array_equal(first.topics, second.topics)

    def test_request_rng_keyed_by_seed_and_id(self):
        assert request_rng(1, 2).random() == request_rng(1, 2).random()
        assert request_rng(1, 2).random() != request_rng(1, 3).random()
        assert request_rng(1, 2).random() != request_rng(2, 2).random()

    def test_result_independent_of_bank_state(self, trained):
        """A warm sampler bank must not change the numbers, only the cost."""
        _corpus, result = trained
        query = [10, 11, 12, 13, 10, 11]
        cold = InferenceEngine.from_model(
            result.model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED
        )
        warm = InferenceEngine.from_model(
            result.model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED
        )
        for word in range(result.model.vocabulary_size):
            warm.state.bank.sampler(word)
        assert np.array_equal(
            cold.infer_request(query, 9).theta, warm.infer_request(query, 9).theta
        )


class TestFoldInQuality:
    def test_empty_document_returns_uniform_prior(self, engine):
        result = engine.infer_request([], request_id=0)
        assert result.theta == pytest.approx(np.full(NUM_TOPICS, 1.0 / NUM_TOPICS))
        assert result.num_tokens == 0

    def test_theta_is_a_distribution(self, trained, engine):
        corpus, _result = trained
        for position, query in enumerate(_golden_queries(corpus)):
            theta = engine.infer_request(query, request_id=position).theta
            assert theta.sum() == pytest.approx(1.0)
            assert np.all(theta > 0.0)

    def test_counts_match_topics(self, engine):
        result = engine.infer_request([1, 2, 3, 4, 5, 6, 7, 8], request_id=5)
        rebuilt = np.bincount(result.topics, minlength=NUM_TOPICS)
        assert np.array_equal(rebuilt, result.doc_topic_counts)

    def test_training_documents_fold_in_near_their_training_counts(self, make_corpus):
        """Property: folding a training document back into a *converged* model
        lands far nearer its training-time topic mixture than the uniform
        mixture does (a barely-trained model has no signal to recover)."""
        corpus = make_corpus(60, 120, 4, 40, 123)
        config = SaberLDAConfig.paper_defaults(
            4, num_iterations=30, num_chunks=2, seed=TRAIN_SEED, evaluate_every=30
        )
        result = train_saberlda(
            corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
        )
        engine = InferenceEngine.from_model(result.model, num_sweeps=30, seed=SERVE_SEED)
        alpha = result.model.params.alpha
        num_topics = result.model.num_topics
        uniform = FoldLike(theta=np.full(num_topics, 1.0 / num_topics))
        improvements = []
        for doc_id in range(0, corpus.num_documents, 3):
            query = corpus.tokens.word_ids[corpus.tokens.doc_ids == doc_id]
            if len(query) == 0:
                continue
            reference_topics, reference_counts = result.doc_topic.row(doc_id)
            reference = np.zeros(num_topics)
            reference[reference_topics] = reference_counts
            folded = engine.infer_request(query, request_id=1000 + doc_id)
            distance = fold_in_proximity(folded, reference, alpha)
            uniform_distance = fold_in_proximity(uniform, reference, alpha)
            improvements.append(uniform_distance - distance)
        assert len(improvements) >= 15
        # Fold-in recovers the training mixture far better than the
        # uninformed prior; allow individual documents to be noisy.
        assert np.mean(improvements) > 0.1
        assert np.mean([delta > 0 for delta in improvements]) >= 0.8

    def test_unseen_word_falls_back_to_prior_without_nans(self):
        """Satellite fix: a zero-count vocabulary row must fold in finitely."""
        params = LDAHyperParams.paper_defaults(4)
        counts = np.zeros((6, 4), dtype=np.int64)
        counts[:5] = [[8, 0, 0, 0]] * 5  # word 5 never seen in training
        model = LDAModel(word_topic_counts=counts, params=params)
        engine = InferenceEngine.from_model(model, num_sweeps=5, seed=1)
        result = engine.infer_request([5, 5, 5], request_id=0)
        assert np.isfinite(result.theta).all()
        assert result.theta.sum() == pytest.approx(1.0)


class FoldLike:
    """Minimal stand-in carrying a theta for :func:`fold_in_proximity`."""

    def __init__(self, theta):
        self.theta = theta


class TestWordSamplerBank:
    @pytest.fixture()
    def phi(self, trained):
        _corpus, result = trained
        return result.model.fold_in_phi()

    def test_builds_lazily_and_reuses(self, phi):
        bank = WordSamplerBank(phi=phi)
        bank.sampler(3)
        bank.sampler(3)
        bank.sampler(7)
        assert bank.builds == 2
        assert bank.hits == 1
        assert bank.resident_words == 2

    def test_lru_eviction(self, phi):
        bank = WordSamplerBank(phi=phi, capacity=2)
        bank.sampler(0)
        bank.sampler(1)
        bank.sampler(0)  # refresh word 0
        bank.sampler(2)  # evicts word 1
        assert bank.evictions == 1
        bank.sampler(0)
        assert bank.builds == 3  # 0 still resident
        bank.sampler(1)
        assert bank.builds == 4  # 1 was evicted and rebuilt

    @pytest.mark.parametrize("kind", [PreprocessKind.WARY_TREE, PreprocessKind.ALIAS_TABLE])
    def test_both_sampler_kinds_draw_valid_topics(self, phi, kind, rng):
        bank = WordSamplerBank(phi=phi, kind=kind)
        draws = bank.draw(5, 200, rng)
        assert draws.shape == (200,)
        assert np.all((0 <= draws) & (draws < phi.shape[1]))

    def test_draws_follow_the_word_distribution(self, phi, rng):
        bank = WordSamplerBank(phi=phi)
        draws = bank.draw(2, 20_000, rng)
        empirical = np.bincount(draws, minlength=phi.shape[1]) / 20_000
        expected = phi[2] / phi[2].sum()
        assert empirical == pytest.approx(expected, abs=0.02)

    def test_rejects_bad_capacity(self, phi):
        with pytest.raises(ValueError):
            WordSamplerBank(phi=phi, capacity=0)

    @pytest.mark.parametrize(
        "kind", [PreprocessKind.WARY_TREE, PreprocessKind.ALIAS_TABLE]
    )
    def test_scratch_buffer_does_not_change_the_draws(self, phi, kind, rng_seed):
        """Regression: the preallocated uniform scratch leaves draws unchanged.

        The bank fills a reusable buffer via ``rng.random(out=...)``
        instead of allocating per call; the drawn topics (and the RNG
        stream position) must equal the allocate-per-call schedule
        ``sample_batch(rng.random(n)[, rng.random(n)])`` exactly, and a
        later draw must not corrupt an earlier draw's returned array.
        """
        bank = WordSamplerBank(phi=phi, kind=kind)
        rng = np.random.default_rng(rng_seed)
        first = bank.draw(3, 17, rng)
        first_copy = first.copy()
        second = bank.draw(5, 40, rng)  # refills the same scratch views

        oracle_rng = np.random.default_rng(rng_seed)
        oracle_bank = WordSamplerBank(phi=phi, kind=kind)
        expected_first = self._draw_without_scratch(oracle_bank, 3, 17, oracle_rng)
        expected_second = self._draw_without_scratch(oracle_bank, 5, 40, oracle_rng)

        assert np.array_equal(first, expected_first)
        assert np.array_equal(first, first_copy)  # not aliased to scratch
        assert np.array_equal(second, expected_second)
        assert rng.random() == oracle_rng.random()  # same stream position

    @staticmethod
    def _draw_without_scratch(bank, word_id, count, rng):
        """The pre-scratch draw schedule, as an oracle."""
        sampler = bank.sampler(word_id)
        if isinstance(sampler, AliasTable):
            return sampler.sample_batch(rng.random(count), rng.random(count))
        return sampler.sample_batch(rng.random(count))

    def test_vectorized_draws_match_reference_draws(self, phi, rng_seed):
        bank = WordSamplerBank(phi=phi)
        reference = bank.draw(4, 64, np.random.default_rng(rng_seed))
        vectorized = bank.draw(
            4, 64, np.random.default_rng(rng_seed), backend=KernelBackend.VECTORIZED
        )
        assert np.array_equal(reference, vectorized)


def _regenerate():
    """Rewrite the golden file (intentional statistical changes only)."""
    from repro.corpus import generate_lda_corpus

    corpus = generate_lda_corpus(**CORPUS_SPEC)
    config = SaberLDAConfig.paper_defaults(
        NUM_TOPICS, num_iterations=3, num_chunks=4, seed=TRAIN_SEED, evaluate_every=3
    )
    result = train_saberlda(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
    )
    engine = InferenceEngine.from_model(
        result.model, num_sweeps=NUM_SWEEPS, seed=SERVE_SEED
    )
    payload = {
        "format": "saberlda-serving-golden",
        "corpus": CORPUS_SPEC,
        "num_topics": NUM_TOPICS,
        "train_seed": TRAIN_SEED,
        "serve_seed": SERVE_SEED,
        "num_sweeps": NUM_SWEEPS,
        "thetas": _golden_thetas(engine, _golden_queries(corpus)),
    }
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return GOLDEN_PATH


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        print(f"wrote {_regenerate()}")
    else:
        print(__doc__)
