"""FaultPlan/FaultInjector: the replayable-chaos contract, without processes.

Everything here is pure (no workers, no clocks): scheduling decisions
must be a function of ``(plan, worker_id, incarnation, batch_index)``
alone, the JSON round trip must be exact (a chaos run is rerunnable from
its report), and burst arrival streams must be bit-identical for the
same seeded generator.
"""

import numpy as np
import pytest

from repro.serving import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    TransientCheckpointError,
    poisson_arrivals_with_bursts,
)
from repro.serving.faults import NO_FAULT


class TestFaultEventValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor", worker_id=0)

    def test_worker_kinds_need_a_lane(self):
        with pytest.raises(ValueError, match="worker lane"):
            FaultEvent(kind="crash")

    def test_stall_needs_positive_seconds(self):
        with pytest.raises(ValueError, match="seconds > 0"):
            FaultEvent(kind="stall", worker_id=0, seconds=0.0)

    def test_burst_needs_window_and_multiplier(self):
        with pytest.raises(ValueError, match="burst"):
            FaultEvent(kind="burst", seconds=1.0, rate_multiplier=0.0)

    def test_flake_needs_count(self):
        with pytest.raises(ValueError, match="count >= 1"):
            FaultEvent(kind="checkpoint_flake", worker_id=0, count=0)


class TestFaultPlan:
    def test_worker_events_filter_by_lane_and_incarnation(self):
        plan = FaultPlan(
            seed=7,
            events=(
                FaultEvent(kind="crash", worker_id=0, at_batch=2),
                FaultEvent(kind="stall", worker_id=1, at_batch=0, seconds=1.0),
                FaultEvent(kind="crash", worker_id=0, at_batch=5, incarnation=1),
            ),
        )
        assert [e.at_batch for e in plan.worker_events(0, 0)] == [2]
        assert [e.at_batch for e in plan.worker_events(0, 1)] == [5]
        assert [e.kind for e in plan.worker_events(1, 0)] == ["stall"]
        assert plan.worker_events(2, 0) == ()

    def test_checkpoint_flake_covers_a_range_of_incarnations(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(
                    kind="checkpoint_flake", worker_id=0, incarnation=1, count=2
                ),
            ),
        )
        assert plan.worker_events(0, 0) == ()
        assert len(plan.worker_events(0, 1)) == 1
        assert len(plan.worker_events(0, 2)) == 1
        assert plan.worker_events(0, 3) == ()

    def test_round_trip_and_digest_stability(self):
        plan = FaultPlan(
            seed=11,
            scenario="crash_respawn",
            events=(
                FaultEvent(kind="crash", worker_id=0, at_batch=1),
                FaultEvent(kind="burst", at_seconds=0.5, seconds=1.0, rate_multiplier=4.0),
            ),
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.digest() == plan.digest()
        # A different schedule is a different fingerprint.
        other = FaultPlan(seed=11, scenario="crash_respawn", events=plan.events[:1])
        assert other.digest() != plan.digest()

    def test_events_tuple_coercion(self):
        plan = FaultPlan(seed=1, events=[FaultEvent(kind="crash", worker_id=0)])
        assert isinstance(plan.events, tuple)


class TestFaultInjector:
    def test_before_batch_is_a_pure_lookup(self):
        plan = FaultPlan(
            seed=3,
            events=(
                FaultEvent(kind="stall", worker_id=0, at_batch=1, seconds=0.5),
                FaultEvent(kind="drop_reply", worker_id=0, at_batch=1),
                FaultEvent(kind="crash", worker_id=0, at_batch=3),
            ),
        )
        injector = FaultInjector(plan, worker_id=0, incarnation=0)
        assert injector.before_batch(0) is NO_FAULT
        action = injector.before_batch(1)
        assert action.stall_seconds == 0.5 and action.drop_reply and not action.crash
        assert injector.before_batch(3).crash
        # Same coordinates, same answer — replay for free.
        assert injector.before_batch(1) == action

    def test_check_boot_raises_only_for_targeted_incarnations(self):
        plan = FaultPlan(
            seed=3,
            events=(
                FaultEvent(kind="checkpoint_flake", worker_id=0, incarnation=1),
            ),
        )
        FaultInjector(plan, worker_id=0, incarnation=0).check_boot()  # fine
        with pytest.raises(TransientCheckpointError):
            FaultInjector(plan, worker_id=0, incarnation=1).check_boot()
        FaultInjector(plan, worker_id=0, incarnation=2).check_boot()  # recovered


class TestBurstArrivals:
    def test_matches_plain_poisson_without_bursts(self):
        from repro.serving import poisson_arrivals

        base = poisson_arrivals(rate_qps=50.0, num_requests=64, rng=np.random.default_rng(5))
        with_plan = poisson_arrivals_with_bursts(
            rate_qps=50.0, num_requests=64, rng=np.random.default_rng(5), plan=None
        )
        np.testing.assert_allclose(with_plan, base)

    def test_burst_compresses_gaps_inside_the_window_only(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(kind="burst", at_seconds=0.0, seconds=1e9, rate_multiplier=10.0),
            ),
        )
        quiet = poisson_arrivals_with_bursts(10.0, 128, np.random.default_rng(9))
        stormy = poisson_arrivals_with_bursts(10.0, 128, np.random.default_rng(9), plan)
        np.testing.assert_allclose(stormy, quiet / 10.0)

    def test_deterministic_replay(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(kind="burst", at_seconds=0.2, seconds=0.5, rate_multiplier=8.0),
            ),
        )
        first = poisson_arrivals_with_bursts(40.0, 256, np.random.default_rng(1), plan)
        second = poisson_arrivals_with_bursts(40.0, 256, np.random.default_rng(1), plan)
        np.testing.assert_array_equal(first, second)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            poisson_arrivals_with_bursts(0.0, 4, np.random.default_rng(0))
