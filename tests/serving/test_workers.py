"""The multi-process data plane: mmap sharing, fault paths, conservation.

Every test here drives *real* OS processes (kept tiny: small models,
few requests, short fold-ins), so the suite asserts the properties that
only hold if the machinery is genuinely multi-process:

* workers open ``phi`` / ``phi_cdf`` as **read-only memory maps of the
  parent's checkpoint files** — one physical copy of the model;
* every fault path — a worker killed mid-batch, a wedged worker blowing
  the IPC deadline, a pool degraded to zero workers — preserves request
  conservation (``admitted == answered + pending + failed``) and the
  request-keyed digest (bit-identity with the in-process engine).
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.bench.timing import stopwatch
from repro.core import LDAHyperParams, save_model_mmap
from repro.core.model import LDAModel
from repro.serving import (
    BackoffPolicy,
    DegradationPolicy,
    FaultEvent,
    FaultPlan,
    InferenceEngine,
    ServingRequest,
    WorkerPool,
    dispatch_tally_increment,
    layout_batch,
    pool_results_digest,
    serve_wallclock,
)

NUM_TOPICS = 6
VOCABULARY = 80
SEED = 13
NUM_SWEEPS = 3


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    rng = np.random.default_rng(SEED)
    counts = rng.integers(0, 30, size=(VOCABULARY, NUM_TOPICS)).astype(np.int64)
    model = LDAModel(
        word_topic_counts=counts,
        params=LDAHyperParams(num_topics=NUM_TOPICS, alpha=0.1, beta=0.01),
    )
    directory = str(tmp_path_factory.mktemp("ckpt") / "model")
    return save_model_mmap(model, directory)


@pytest.fixture(scope="module")
def requests():
    rng = np.random.default_rng(SEED + 1)
    return [
        ServingRequest(
            request_id=index,
            word_ids=rng.integers(0, VOCABULARY, size=12).astype(np.int32),
            arrival_seconds=0.0,
        )
        for index in range(12)
    ]


@pytest.fixture(scope="module")
def reference_digest(checkpoint, requests):
    engine = InferenceEngine.from_mmap_checkpoint(
        checkpoint, seed=SEED, num_sweeps=NUM_SWEEPS, mmap_mode=None
    )
    outcomes = [
        type(
            "Outcome",
            (),
            {
                "request_id": request.request_id,
                "theta": engine.infer_request(
                    request.word_ids, request.request_id
                ).theta,
            },
        )()
        for request in requests
    ]
    return pool_results_digest(outcomes)


def _pool(checkpoint, **overrides):
    options = dict(
        checkpoint_dir=checkpoint,
        num_workers=2,
        seed=SEED,
        num_sweeps=NUM_SWEEPS,
    )
    options.update(overrides)
    return WorkerPool(**options)


def _assert_conserved(pool):
    stats = pool.stats()
    assert (
        stats["admitted"]
        == stats["answered"] + stats["pending"] + stats["failed"]
    ), stats


class TestMmapSharing:
    def test_workers_map_the_checkpoint_readonly(self, checkpoint):
        with _pool(checkpoint) as pool:
            assert sorted(pool.worker_info) == [0, 1]
            phi_path = os.path.realpath(os.path.join(checkpoint, "phi.npy"))
            for info in pool.worker_info.values():
                assert info["phi_is_memmap"] is True
                assert info["phi_cdf_is_memmap"] is True
                assert info["mmap_mode"] == "r"
                # Every worker maps the parent's file — one on-disk copy.
                assert os.path.realpath(info["phi_filename"]) == phi_path
            pids = {info["pid"] for info in pool.worker_info.values()}
            assert os.getpid() not in pids and len(pids) == 2

    def test_parent_fallback_state_is_memmapped_too(self, checkpoint):
        with _pool(checkpoint, num_workers=0) as pool:
            assert isinstance(pool._fallback_state.phi, np.memmap)
            assert not pool._fallback_state.phi.flags.writeable


class TestHappyPath:
    def test_bit_identical_to_inprocess_engine(
        self, checkpoint, requests, reference_digest
    ):
        with _pool(checkpoint) as pool:
            report = serve_wallclock(pool, requests, batch_docs=4)
        assert report.failed == 0
        assert pool_results_digest(report.outcomes) == reference_digest
        assert report.summary()["pool_retries"] == 0

    def test_engine_pool_execute_surface(self, checkpoint, requests, reference_digest):
        # The EnginePool-shaped surface: laid-out batches in, results out,
        # a single measured "wall" phase per participating worker.
        with _pool(checkpoint) as pool:
            outcomes = []
            for start in range(0, len(requests), 4):
                batch = layout_batch(
                    requests[start : start + 4], batch_id=start, dispatch_seconds=0.0
                )
                execution = pool.execute(batch, lane=start % 2)
                assert execution.per_engine_phase_seconds[0]["wall"] > 0
                for request, result in zip(batch.requests, execution.results, strict=True):
                    outcomes.append(
                        type(
                            "Outcome",
                            (),
                            {"request_id": request.request_id, "theta": result.theta},
                        )()
                    )
            _assert_conserved(pool)
        digest = pool_results_digest(sorted(outcomes, key=lambda o: o.request_id))
        assert digest == reference_digest


class TestFaultPaths:
    def test_worker_killed_mid_batch_retries_on_survivor(
        self, checkpoint, requests, reference_digest
    ):
        with _pool(checkpoint, batch_timeout_seconds=20.0) as pool:
            # Pin a stalled batch to worker 0, kill it mid-flight.
            first = requests[: len(requests) // 2]
            second = requests[len(requests) // 2 :]
            pool.submit(first, stall_seconds=8.0, worker_id=0)
            time.sleep(0.3)
            pool._processes[0].kill()
            pool.submit(second, worker_id=1)
            outcomes = [pool.collect(), pool.collect()]
            _assert_conserved(pool)
            assert pool.retries == 1
            assert {outcome.status for outcome in outcomes} == {"answered"}
            assert all(outcome.worker_id == 1 for outcome in outcomes)
            assert 0 not in pool.live_workers
        flat = [
            type("Outcome", (), {"request_id": rid, "theta": result.theta})()
            for outcome in outcomes
            for rid, result in zip(outcome.request_ids, outcome.results, strict=True)
        ]
        flat.sort(key=lambda o: o.request_id)
        assert pool_results_digest(flat) == reference_digest

    def test_ipc_timeout_falls_back_in_process(
        self, checkpoint, requests, reference_digest
    ):
        # One worker, wedged far past the deadline: the pool must kill
        # it, exhaust retries (no survivor exists) and answer in-process.
        with _pool(
            checkpoint, num_workers=1, batch_timeout_seconds=0.4
        ) as pool:
            pool.submit(requests, stall_seconds=60.0, worker_id=0)
            outcome = pool.collect()
            _assert_conserved(pool)
            assert outcome.status == "answered"
            assert outcome.worker_id == -1  # in-process fallback
            assert pool.fallback_batches == 1
            assert pool.degraded
        flat = [
            type("Outcome", (), {"request_id": rid, "theta": result.theta})()
            for rid, result in zip(outcome.request_ids, outcome.results, strict=True)
        ]
        assert pool_results_digest(flat) == reference_digest

    def test_timeout_without_fallback_fails_conserved(self, checkpoint, requests):
        with _pool(
            checkpoint,
            num_workers=1,
            batch_timeout_seconds=0.4,
            max_retries=0,
            inprocess_fallback=False,
        ) as pool:
            pool.submit(requests[:4], stall_seconds=60.0, worker_id=0)
            outcome = pool.collect()
            assert outcome.status == "failed"
            assert outcome.results == []
            assert pool.failed == 4
            _assert_conserved(pool)

    def test_zero_worker_pool_degrades_gracefully(
        self, checkpoint, requests, reference_digest
    ):
        with _pool(checkpoint, num_workers=0) as pool:
            assert pool.degraded
            report = serve_wallclock(pool, requests, batch_docs=5)
            _assert_conserved(pool)
        assert report.failed == 0
        assert all(outcome.worker_id == -1 for outcome in report.outcomes)
        assert pool_results_digest(report.outcomes) == reference_digest


class TestValidation:
    def test_rejects_empty_batch_and_double_start(self, checkpoint):
        with _pool(checkpoint, num_workers=0) as pool:
            with pytest.raises(ValueError, match="at least one request"):
                pool.submit([])
            with pytest.raises(RuntimeError, match="twice"):
                pool.start()
            with pytest.raises(ValueError, match="no batch in flight"):
                pool.collect()

    def test_rejects_non_mmap_checkpoint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            WorkerPool(str(tmp_path / "missing"), num_workers=0).start()

    def test_per_worker_logs_are_written(self, checkpoint, requests):
        with _pool(checkpoint) as pool:
            serve_wallclock(pool, requests, batch_docs=6)
            log_dir = pool.log_dir
        logs = sorted(os.listdir(log_dir))
        assert logs == ["worker00.log", "worker01.log"]
        merged = ""
        for name in logs:
            with open(os.path.join(log_dir, name), encoding="utf-8") as handle:
                merged += handle.read()
        assert "ready" in merged and "batch=" in merged


class TestOutOfOrderCollect:
    """Regression: interleaved submits must never drop a batch's outcome.

    ``execute()`` used to spin ``collect()`` until the batch id matched,
    silently discarding every other batch's answer — a second in-flight
    submit simply lost its results.
    """

    def test_execute_buffers_other_batches_for_their_own_collect(
        self, checkpoint, requests
    ):
        with _pool(checkpoint, num_workers=1) as pool:
            # Two interleaved submits on one worker: the worker answers
            # FIFO, so the async batch resolves *before* execute()'s own.
            async_id = pool.submit(requests[:3])
            batch = layout_batch(list(requests[3:6]), batch_id=0, dispatch_seconds=0.0)
            execution = pool.execute(batch)
            assert len(execution.results) == 3
            # Pre-fix: the async batch's outcome was discarded inside
            # execute() and this collect() raised "no batch in flight".
            outcome = pool.collect()
            assert outcome.batch_id == async_id
            assert outcome.status == "answered"
            assert len(outcome.results) == 3
            _assert_conserved(pool)
            assert pool.pending == 0

    def test_collect_batch_waits_for_the_requested_batch(self, checkpoint, requests):
        with _pool(checkpoint, num_workers=1) as pool:
            first = pool.submit(requests[:2])
            second = pool.submit(requests[2:4])
            outcome = pool.collect_batch(second)
            assert outcome.batch_id == second
            buffered = pool.collect()
            assert buffered.batch_id == first
            _assert_conserved(pool)

    def test_collect_batch_rejects_unknown_batch(self, checkpoint):
        with _pool(checkpoint, num_workers=0) as pool:
            with pytest.raises(ValueError, match="not in flight"):
                pool.collect_batch(99)


def _reap_window(seconds: float = 6.0):
    """Poll until no ``saberlda-worker-*`` children remain (or time out)."""
    watch = stopwatch()
    while watch.elapsed() < seconds:
        alive = [
            process
            for process in multiprocessing.active_children()
            if process.name.startswith("saberlda-worker-")
        ]
        if not alive:
            return []
        time.sleep(0.05)
    return alive


class TestLifecycle:
    """Context-manager hygiene: no zombies, idempotent close."""

    def test_exception_mid_execute_leaves_zero_children(self, checkpoint, requests):
        # Regression: an exception while a batch is in flight must still
        # run close() on the way out and reap every worker process.
        with pytest.raises(RuntimeError, match="boom"):
            with _pool(checkpoint) as pool:
                pool.submit(requests[:4], stall_seconds=5.0)
                raise RuntimeError("boom")
        assert _reap_window() == []

    def test_close_is_idempotent(self, checkpoint, requests):
        pool = _pool(checkpoint).start()
        pool.submit(requests[:3])
        pool.collect()
        pool.close()
        pool.close()  # second close: no-op, no error
        assert _reap_window() == []
        with pool:  # __exit__ after manual close is equally harmless
            pass


class TestDispatchCounting:
    """The pinned counting rule: retries and hedges never double-count."""

    def test_tally_increment_rule(self):
        assert dispatch_tally_increment(0, hedge=False) == 1  # first primary
        assert dispatch_tally_increment(1, hedge=False) == 0  # retry
        assert dispatch_tally_increment(2, hedge=False) == 0
        assert dispatch_tally_increment(0, hedge=True) == 0  # hedge duplicate
        assert dispatch_tally_increment(1, hedge=True) == 0

    def test_retried_batch_counts_once(self, checkpoint, requests):
        # Kill worker 0 mid-batch: the batch re-sends to worker 1, but
        # ``dispatched`` and the lane tallies still see exactly one
        # dispatch per admitted batch (IPC sends = dispatched + retries).
        with _pool(checkpoint, batch_timeout_seconds=20.0) as pool:
            pool.submit(requests[:6], stall_seconds=8.0, worker_id=0)
            time.sleep(0.3)
            pool._processes[0].kill()
            pool.submit(requests[6:], worker_id=1)
            pool.collect()
            pool.collect()
            stats = pool.stats()
            assert stats["retries"] == 1
            assert stats["dispatched"] == 2
            assert sum(stats["lane_dispatches"].values()) == 2
            assert stats["lane_dispatches"] == {0: 1, 1: 1}
            _assert_conserved(pool)


class TestSupervisedPool:
    """The full ladder against real processes, driven by a FaultPlan."""

    # Near-zero backoff so the respawn comes due within these tiny runs.
    FAST_BACKOFF = BackoffPolicy(base_seconds=1e-3, factor=2.0, cap_seconds=0.1)

    def test_crash_respawn_preserves_digest(
        self, checkpoint, requests, reference_digest
    ):
        plan = FaultPlan(
            seed=SEED,
            scenario="crash_respawn",
            events=(FaultEvent(kind="crash", worker_id=0, at_batch=0),),
        )
        policy = DegradationPolicy(
            respawn=True, max_retries=1, backoff=self.FAST_BACKOFF
        )
        with _pool(
            checkpoint,
            policy=policy,
            fault_plan=plan,
            batch_timeout_seconds=15.0,
        ) as pool:
            report = serve_wallclock(pool, requests, batch_docs=4)
            stats = pool.stats()
            _assert_conserved(pool)
        assert report.failed == 0
        assert pool_results_digest(report.outcomes) == reference_digest
        assert stats["retries"] >= 1  # the crashed batch re-ran elsewhere
        assert stats["respawns"] >= 1  # and the lane was respawned
        assert stats["dispatched"] == 3  # 12 requests / 4 per batch, no double count
        assert report.respawns == stats["respawns"]

    def test_respawned_lane_returns_to_service(self, checkpoint, requests):
        plan = FaultPlan(
            seed=SEED,
            events=(FaultEvent(kind="crash", worker_id=0, at_batch=0),),
        )
        policy = DegradationPolicy(
            respawn=True, max_retries=1, backoff=self.FAST_BACKOFF
        )
        with _pool(
            checkpoint,
            policy=policy,
            fault_plan=plan,
            batch_timeout_seconds=15.0,
        ) as pool:
            pool.submit(requests[:4], worker_id=0)
            assert pool.collect().status == "answered"
            # Keep the collect loop pumping until the supervisor brings
            # lane 0 back (spawn + mmap open + ready handshake): recovery
            # is sampled only when the replacement's ready message lands.
            watch = stopwatch()
            stats = pool.stats()
            while stats["recovery_seconds"] == 0.0 and watch.elapsed() < 20.0:
                pool.submit(requests[4:6], worker_id=1)
                pool.collect()
                time.sleep(0.05)
                stats = pool.stats()
            assert 0 in pool.live_workers
            assert stats["respawns"] == 1
            assert stats["recovery_seconds"] > 0.0
            assert stats["mttr_seconds"] > 0.0
            # The revived incarnation serves batches again.
            pool.submit(requests[6:9], worker_id=0)
            outcome = pool.collect()
            assert outcome.status == "answered" and outcome.worker_id == 0
            _assert_conserved(pool)

    def test_straggler_hedge_answers_from_the_other_lane(
        self, checkpoint, requests, reference_digest
    ):
        plan = FaultPlan(
            seed=SEED,
            scenario="straggler_hedge",
            events=(FaultEvent(kind="stall", worker_id=0, at_batch=0, seconds=8.0),),
        )
        policy = DegradationPolicy(hedge=True, hedge_after_fraction=0.1)
        with _pool(
            checkpoint,
            policy=policy,
            fault_plan=plan,
            batch_timeout_seconds=20.0,
        ) as pool:
            watch = stopwatch()
            pool.submit(requests[:6], worker_id=0)
            outcome = pool.collect()
            elapsed = watch.elapsed()
            stats = pool.stats()
            _assert_conserved(pool)
        assert outcome.status == "answered"
        assert outcome.worker_id == 1  # hedge won while the primary stalled
        assert elapsed < 8.0  # answered well before the straggler finished
        assert stats["hedged"] == 1 and stats["hedge_wins"] == 1
        assert stats["retries"] == 0
        assert stats["dispatched"] == 1  # hedge duplicate not double-counted
        flat = [
            type("Outcome", (), {"request_id": rid, "theta": result.theta})()
            for rid, result in zip(outcome.request_ids, outcome.results, strict=True)
        ]
        engine = InferenceEngine.from_mmap_checkpoint(
            checkpoint, seed=SEED, num_sweeps=NUM_SWEEPS, mmap_mode=None
        )
        expected = [
            type(
                "Outcome",
                (),
                {
                    "request_id": request.request_id,
                    "theta": engine.infer_request(
                        request.word_ids, request.request_id
                    ).theta,
                },
            )()
            for request in requests[:6]
        ]
        assert pool_results_digest(flat) == pool_results_digest(expected)


class TestReportCompat:
    """WallClockReport speaks ServingReport's stats surface (one rule)."""

    def test_summary_carries_every_simulated_report_key(self, checkpoint, requests):
        from repro.serving.server import ServingReport

        simulated_keys = set(
            ServingReport(
                outcomes=[],
                batches=[],
                makespan_seconds=0.0,
                rejection_rate=0.0,
                mean_batch_docs=0.0,
                cache_hits=0,
                cache_lookups=0,
            ).summary()
        )
        with _pool(checkpoint) as pool:
            report = serve_wallclock(pool, requests, batch_docs=4)
        assert simulated_keys <= set(report.summary())

    def test_field_for_field_accessors(self, checkpoint, requests):
        with _pool(checkpoint) as pool:
            report = serve_wallclock(pool, requests, batch_docs=4)
        latencies = sorted(
            outcome.latency_seconds
            for outcome in report.outcomes
            if outcome.status == "answered"
        )
        assert report.latency_percentile(50.0) == np.percentile(latencies, 50.0)
        assert report.p50_seconds == report.latency_percentile(50.0)
        assert report.p99_seconds == report.latency_percentile(99.0)
        assert report.mean_seconds == pytest.approx(float(np.mean(latencies)))
        assert report.rejected == report.failed == 0
        assert report.rejection_rate == 0.0
        assert report.cache_hit_rate == 0.0  # closed loop bypasses the cache
        assert report.mean_batch_docs == pytest.approx(4.0)

    def test_zero_answered_is_nan_not_zero(self):
        from repro.serving.workers import WallClockReport

        empty = WallClockReport(
            outcomes=[], batches=[], wall_seconds=0.1, pool_stats={}
        )
        assert np.isnan(empty.latency_percentile(50.0))
        assert np.isnan(empty.p50_seconds)
        assert np.isnan(empty.p99_seconds)
        assert np.isnan(empty.mean_seconds)
        assert empty.rejection_rate == 0.0
        assert empty.sustained_qps == 0.0
