"""Admission control and micro-batch packing."""

import numpy as np
import pytest

from repro.serving import BatchScheduler, RequestQueue, ServingRequest, layout_batch


def _request(request_id: int, arrival: float = 0.0, tokens=(1, 2, 3)) -> ServingRequest:
    return ServingRequest(
        request_id=request_id,
        word_ids=np.asarray(tokens, dtype=np.int32),
        arrival_seconds=arrival,
    )


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue(max_depth=8)
        for request_id in range(3):
            assert queue.offer(_request(request_id, arrival=0.1 * request_id))
        taken = queue.pop_up_to(2)
        assert [request.request_id for request in taken] == [0, 1]
        assert queue.depth == 1

    def test_admission_control_sheds_past_the_bound(self):
        queue = RequestQueue(max_depth=2)
        assert queue.offer(_request(0))
        assert queue.offer(_request(1))
        assert not queue.offer(_request(2))
        assert queue.admitted == 2
        assert queue.rejected == 1
        assert queue.rejection_rate() == pytest.approx(1.0 / 3.0)

    def test_unbounded_queue_never_rejects(self):
        queue = RequestQueue(max_depth=None)
        for request_id in range(500):
            assert queue.offer(_request(request_id))
        assert queue.rejected == 0

    def test_oldest_arrival(self):
        queue = RequestQueue()
        assert queue.oldest_arrival() is None
        queue.offer(_request(0, arrival=0.7))
        queue.offer(_request(1, arrival=0.9))
        assert queue.oldest_arrival() == pytest.approx(0.7)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            RequestQueue(max_depth=0)


class TestBatchScheduler:
    def test_not_ready_when_empty(self):
        scheduler = BatchScheduler(max_batch_docs=4, max_wait_seconds=1.0)
        assert not scheduler.ready(RequestQueue(), now=100.0)

    def test_ready_when_batch_fills(self):
        scheduler = BatchScheduler(max_batch_docs=2, max_wait_seconds=100.0)
        queue = RequestQueue()
        queue.offer(_request(0))
        assert not scheduler.ready(queue, now=0.0)
        queue.offer(_request(1))
        assert scheduler.ready(queue, now=0.0)

    def test_ready_when_oldest_waits_out(self):
        scheduler = BatchScheduler(max_batch_docs=16, max_wait_seconds=0.5)
        queue = RequestQueue()
        queue.offer(_request(0, arrival=1.0))
        assert not scheduler.ready(queue, now=1.4)
        assert scheduler.ready(queue, now=1.5)
        assert scheduler.next_deadline(queue) == pytest.approx(1.5)

    def test_ready_is_consistent_with_its_own_deadline(self):
        """Float-precision regression: advancing the clock to next_deadline()
        must flip ready() true, whatever the arrival's mantissa."""
        scheduler = BatchScheduler(max_batch_docs=16, max_wait_seconds=0.002)
        queue = RequestQueue()
        queue.offer(_request(0, arrival=0.12345678901234567))
        deadline = scheduler.next_deadline(queue)
        assert scheduler.ready(queue, now=deadline)

    def test_draining_dispatches_partial_batches(self):
        scheduler = BatchScheduler(max_batch_docs=16, max_wait_seconds=100.0)
        queue = RequestQueue()
        queue.offer(_request(0))
        assert not scheduler.ready(queue, now=0.0)
        assert scheduler.ready(queue, now=0.0, draining=True)

    def test_dispatch_pops_and_counts(self):
        scheduler = BatchScheduler(max_batch_docs=2, max_wait_seconds=0.0)
        queue = RequestQueue()
        for request_id in range(3):
            queue.offer(_request(request_id))
        batch = scheduler.dispatch(queue, now=1.0)
        assert batch.num_documents == 2
        assert queue.depth == 1
        assert scheduler.batches_dispatched == 1
        assert scheduler.mean_batch_occupancy() == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BatchScheduler(max_batch_docs=0)
        with pytest.raises(ValueError):
            BatchScheduler(max_wait_seconds=-1.0)


class TestLayoutBatch:
    def test_batch_is_one_pdow_chunk(self):
        requests = [
            _request(10, arrival=0.0, tokens=[5, 1, 5]),
            _request(11, arrival=0.1, tokens=[2, 5]),
        ]
        batch = layout_batch(requests, batch_id=3, dispatch_seconds=0.2)
        assert batch.batch_id == 3
        assert batch.num_documents == 2
        assert batch.num_tokens == 5
        # Word-major: tokens sorted by word id, the PDOW in-chunk order.
        assert list(batch.tokens.word_ids) == sorted(batch.tokens.word_ids)
        assert batch.distinct_words() == 3
        # Batch-local document ids index back into `requests`.
        assert set(batch.tokens.doc_ids) == {0, 1}
        assert batch.chunk.num_documents == 2

    def test_queue_wait_accounting(self):
        requests = [_request(0, arrival=0.2), _request(1, arrival=0.5)]
        batch = layout_batch(requests, batch_id=0, dispatch_seconds=1.0)
        assert batch.queue_wait_seconds() == pytest.approx([0.8, 0.5])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            layout_batch([], batch_id=0, dispatch_seconds=0.0)
