"""Tests for topic-column model parallelism: plans, all-to-all, trainer modes."""

import numpy as np
import pytest

from repro.core import word_topic_digest
from repro.distributed import (
    AllToAll,
    DistributedTrainer,
    RingAllReduce,
    TopicShardPlan,
    TopicShard,
    plan_topic_shards,
    train_distributed,
)
from repro.gpusim import NVLINK, PCIE_P2P, CostModel, InterconnectSpec
from repro.saberlda import SaberLDAConfig, train_saberlda


class TestTopicShardPlan:
    def test_shards_tile_the_columns(self):
        plan = plan_topic_shards(100, 8)
        assert plan.num_topics == 100
        assert plan.num_devices == 8
        position = 0
        for shard in plan.shards:
            assert shard.topic_start == position
            position = shard.topic_stop
        assert position == 100

    def test_near_equal_split(self):
        plan = plan_topic_shards(103, 4)
        widths = plan.shard_topic_counts
        assert sum(widths) == 103
        assert max(widths) - min(widths) <= 1
        assert plan.max_shard_topics == max(widths)

    def test_owner_of_topic(self):
        plan = plan_topic_shards(12, 3)
        for topic in range(12):
            owner = plan.owner_of_topic(topic)
            start, stop = plan.columns_for_device(owner)
            assert start <= topic < stop
        with pytest.raises(ValueError):
            plan.owner_of_topic(12)
        with pytest.raises(ValueError):
            plan.owner_of_topic(-1)

    def test_model_bytes_shrink_with_devices(self):
        vocabulary_size = 50_000
        replicated = vocabulary_size * 96 * 4
        previous = float("inf")
        for num_devices in (1, 2, 4, 8):
            plan = plan_topic_shards(96, num_devices)
            per_device = plan.max_model_bytes(vocabulary_size)
            assert per_device == pytest.approx(replicated / num_devices)
            assert per_device < previous or num_devices == 1
            previous = per_device

    def test_rejects_gapped_or_overlapping_shards(self):
        with pytest.raises(ValueError):
            TopicShardPlan(shards=(TopicShard(0, 0, 4), TopicShard(1, 5, 8)))
        with pytest.raises(ValueError):
            TopicShardPlan(shards=(TopicShard(0, 0, 4), TopicShard(1, 3, 8)))
        with pytest.raises(ValueError):
            TopicShardPlan(shards=())

    def test_empty_devices_counted(self):
        plan = plan_topic_shards(2, 4)
        assert plan.num_topics == 2
        assert plan.num_empty_devices == 2

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_topic_shards(0, 2)
        with pytest.raises(ValueError):
            plan_topic_shards(8, 0)


class TestAllToAllCost:
    def test_single_device_is_free(self):
        cost = AllToAll(link=NVLINK).cost(10_000, num_devices=1)
        assert cost.seconds == 0.0
        assert cost.num_rounds == 0
        assert cost.wire_bytes_per_device == 0.0

    def test_monotone_in_bytes(self):
        alltoall = AllToAll(link=PCIE_P2P)
        sizes = [10_000, 100_000, 1_000_000, 10_000_000]
        seconds = [alltoall.cost(size, 4).seconds for size in sizes]
        assert all(a < b for a, b in zip(seconds, seconds[1:], strict=False))

    def test_monotone_in_devices(self):
        alltoall = AllToAll(link=PCIE_P2P)
        # More peers mean more rounds; with the per-round payload shrinking
        # 1/N the bandwidth term saturates, but the latency term keeps the
        # total strictly increasing.
        seconds = [alltoall.cost(1_000_000, n).seconds for n in (2, 4, 8, 16)]
        assert all(a < b for a, b in zip(seconds, seconds[1:], strict=False))

    def test_monotone_in_latency(self):
        slow_link = InterconnectSpec(
            name="slow", bandwidth=NVLINK.bandwidth, latency_seconds=1e-3
        )
        fast = AllToAll(link=NVLINK).cost(500_000, 4).seconds
        slow = AllToAll(link=slow_link).cost(500_000, 4).seconds
        assert slow > fast

    def test_matches_closed_form(self):
        num_elements, devices = 1_000_000, 4
        cost = AllToAll(link=NVLINK).cost(num_elements, devices)
        num_bytes = num_elements * 4
        expected = (devices - 1) * (
            NVLINK.latency_seconds + num_bytes / devices / NVLINK.effective_bandwidth
        )
        assert cost.seconds == pytest.approx(expected)
        assert cost.num_rounds == devices - 1

    def test_cheaper_than_the_ring(self):
        # Half the steps of the bandwidth-optimal ring at the same payload.
        ring = RingAllReduce(link=PCIE_P2P).cost(4_000_000, 8).seconds
        alltoall = AllToAll(link=PCIE_P2P).cost(4_000_000, 8).seconds
        assert alltoall == pytest.approx(0.5 * ring)

    def test_exchange_is_exact_sum(self, rng):
        arrays = [rng.integers(0, 50, size=(40, 12)) for _ in range(4)]
        merged = AllToAll(link=NVLINK).exchange(arrays)
        np.testing.assert_array_equal(merged, np.sum(arrays, axis=0))

    def test_exchange_applies_wire_overflow_guard(self):
        half = np.full((2, 2), 2**31 - 1, dtype=np.int64)
        with pytest.raises(OverflowError, match="int32 wire format"):
            AllToAll(link=NVLINK).exchange([half, half])
        # The guard also covers the single-partial path the topic-parallel
        # trainer routes its merged counts through.
        with pytest.raises(OverflowError, match="int32 wire format"):
            AllToAll(link=NVLINK).exchange([np.full((1,), 2**31, dtype=np.int64)])

    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            CostModel.alltoall_seconds(1.0, 0, NVLINK)
        with pytest.raises(ValueError):
            CostModel.alltoall_seconds(-1.0, 2, NVLINK)
        assert CostModel.alltoall_seconds(0.0, 4, NVLINK) == 0.0


@pytest.fixture(scope="module")
def corpus(make_corpus):
    return make_corpus(120, 300, 8, 50, 3)


@pytest.fixture(scope="module")
def config():
    return SaberLDAConfig.paper_defaults(8, num_iterations=3, num_chunks=8, seed=5)


@pytest.fixture(scope="module")
def single_result(corpus, config):
    return train_saberlda(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
    )


class TestTopicParallelTraining:
    @pytest.mark.parametrize("parallelism", ["topic", "hybrid"])
    @pytest.mark.parametrize("num_devices", [2, 4])
    def test_bit_identical_to_single_device(
        self, corpus, config, single_result, parallelism, num_devices
    ):
        result = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=num_devices,
            parallelism=parallelism,
        )
        assert word_topic_digest(result.model.word_topic_counts) == word_topic_digest(
            single_result.model.word_topic_counts
        )
        np.testing.assert_array_equal(
            result.doc_topic.to_dense(), single_result.doc_topic.to_dense()
        )

    @pytest.mark.parametrize("parallelism", ["topic", "hybrid"])
    def test_alltoall_reported_separately_from_ring(self, corpus, config, parallelism):
        result = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=4,
            parallelism=parallelism,
        )
        for record in result.history:
            assert record.allreduce_seconds == 0.0
            assert record.alltoall_seconds > 0.0
            assert 0.0 <= record.exposed_alltoall_seconds <= record.alltoall_seconds
            assert record.simulated_seconds == pytest.approx(
                record.barrier_seconds + record.exposed_alltoall_seconds
            )
        assert result.ring_seconds_total() == 0.0
        assert result.alltoall_seconds_total() > 0.0

    def test_model_memory_shrinks_with_devices(self, corpus, config):
        replicated = None
        for num_devices in (1, 2, 4):
            result = train_distributed(
                corpus.unassigned_copy(),
                corpus.num_documents,
                corpus.vocabulary_size,
                config,
                num_devices=num_devices,
                parallelism="hybrid",
            )
            if replicated is None:
                replicated = result.model_bytes_per_device()
            assert result.model_bytes_per_device() == pytest.approx(
                replicated / num_devices
            )

    def test_data_mode_reports_no_alltoall(self, corpus, config):
        result = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=2,
            parallelism="data",
        )
        assert result.alltoall_seconds_total() == 0.0
        assert result.ring_seconds_total() > 0.0
        assert result.topic_plan is None

    def test_topic_mode_has_no_chunk_plan(self, corpus, config):
        result = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=2,
            parallelism="topic",
        )
        assert result.plan is None
        assert result.topic_plan is not None
        assert result.topic_plan.num_devices == 2
        assert result.model.metadata["parallelism"] == "topic"

    def test_hybrid_beats_data_on_preprocessing(self, corpus, config):
        """Sharded pre-processing must shrink the slowest device's phase."""
        data = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=4,
            parallelism="data",
        )
        hybrid = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=4,
            parallelism="hybrid",
        )
        assert (
            hybrid.phase_breakdown()["preprocessing"]
            < data.phase_breakdown()["preprocessing"]
        )

    def test_rejects_unknown_mode(self, config):
        with pytest.raises(ValueError):
            DistributedTrainer(config=config, num_devices=2, parallelism="tensor")

    def test_rejects_more_devices_than_topics(self):
        config = SaberLDAConfig.paper_defaults(4)
        with pytest.raises(ValueError):
            DistributedTrainer(config=config, num_devices=8, parallelism="topic")
