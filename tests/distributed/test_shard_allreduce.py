"""Unit tests for the shard planner, the ring all-reduce and the pool model."""

import numpy as np
import pytest

from repro.distributed import (
    AllReduceCost,
    RingAllReduce,
    ShardPlanner,
    build_sharded_layout,
    exposed_allreduce_seconds,
)
from repro.gpusim import NVLINK, PCIE_P2P, CostModel, DevicePool, GTX_1080, get_interconnect
from repro.saberlda import SaberLDAConfig


class TestShardPlanner:
    def test_every_chunk_assigned_exactly_once(self):
        plan = ShardPlanner().plan([10, 7, 3, 9, 2, 8], num_devices=3)
        assigned = sorted(
            index for shard in plan.shards for index in shard.chunk_indices
        )
        assert assigned == list(range(6))

    def test_token_totals_preserved(self):
        counts = [13, 2, 40, 5, 5, 21, 9]
        plan = ShardPlanner().plan(counts, num_devices=4)
        assert plan.total_tokens == sum(counts)
        for shard in plan.shards:
            assert shard.num_tokens == sum(counts[i] for i in shard.chunk_indices)

    def test_lpt_beats_round_robin_on_skewed_chunks(self):
        # One huge chunk plus a tail: round-robin pairs the huge chunk with
        # more work, LPT gives it a device of its own.
        counts = [100, 10, 10, 10, 10, 10]
        plan = ShardPlanner().plan(counts, num_devices=2)
        assert plan.max_shard_tokens == 100
        round_robin_max = max(
            sum(counts[0::2]), sum(counts[1::2])
        )
        assert plan.max_shard_tokens < round_robin_max

    def test_chunk_indices_stay_in_stream_order(self):
        plan = ShardPlanner().plan([5, 50, 5, 50, 5], num_devices=2)
        for shard in plan.shards:
            assert shard.chunk_indices == sorted(shard.chunk_indices)

    def test_deterministic(self):
        counts = list(np.random.default_rng(0).integers(1, 100, size=20))
        first = ShardPlanner().plan(counts, num_devices=4)
        second = ShardPlanner().plan(counts, num_devices=4)
        assert [s.chunk_indices for s in first.shards] == [
            s.chunk_indices for s in second.shards
        ]

    def test_imbalance_zero_for_perfect_split(self):
        plan = ShardPlanner().plan([10, 10, 10, 10], num_devices=2)
        assert plan.token_imbalance == pytest.approx(0.0)

    def test_empty_devices_do_not_inflate_imbalance(self):
        # Two equal chunks on four devices: the planner cannot populate
        # more than two shards, and the packing it found is perfect.
        plan = ShardPlanner().plan([10, 10], num_devices=4)
        assert plan.num_empty_devices == 2
        assert plan.num_active_devices == 2
        assert plan.token_imbalance == pytest.approx(0.0)
        assert plan.balance_efficiency == pytest.approx(1.0)

    def test_imbalance_still_counts_uneven_active_shards(self):
        plan = ShardPlanner().plan([30, 10], num_devices=4)
        assert plan.num_empty_devices == 2
        # Ideal over the two active shards is 20 tokens; the heavy one
        # carries 30.
        assert plan.token_imbalance == pytest.approx(0.5)
        assert plan.balance_efficiency == pytest.approx(20 / 30)

    def test_fully_populated_plan_unchanged_by_the_fix(self):
        counts = [40, 30, 20, 10]
        plan = ShardPlanner().plan(counts, num_devices=2)
        assert plan.num_empty_devices == 0
        ideal = sum(counts) / 2
        assert plan.token_imbalance == pytest.approx(
            plan.max_shard_tokens / ideal - 1.0
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ShardPlanner().plan([1, 2], num_devices=0)
        with pytest.raises(ValueError):
            ShardPlanner().plan([1, -2], num_devices=2)

    def test_build_sharded_layout_raises_chunk_count(self, small_corpus):
        config = SaberLDAConfig.paper_defaults(6, num_chunks=2)
        layouts, plan, effective = build_sharded_layout(
            small_corpus.tokens.copy(), small_corpus.num_documents, config, num_devices=4
        )
        assert effective.num_chunks == 8
        assert len(layouts) == 8
        assert plan.num_devices == 4
        assert all(shard.num_chunks > 0 for shard in plan.shards)


class TestRingAllReduce:
    def test_reduce_is_exact_integer_sum(self, rng):
        arrays = [rng.integers(0, 100, size=(50, 8)) for _ in range(5)]
        merged = RingAllReduce(link=NVLINK).reduce(arrays)
        np.testing.assert_array_equal(merged, np.sum(arrays, axis=0))

    def test_reduce_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            RingAllReduce(link=NVLINK).reduce([np.zeros((2, 2)), np.zeros((3, 2))])

    def test_reduce_does_not_mutate_inputs(self):
        arrays = [np.full((4, 4), 7, dtype=np.int64) for _ in range(3)]
        originals = [array.copy() for array in arrays]
        RingAllReduce(link=NVLINK).reduce(arrays)
        for array, original in zip(arrays, originals, strict=True):
            np.testing.assert_array_equal(array, original)

    def test_reduce_promotes_mixed_dtypes_once(self):
        arrays = [
            np.full((2, 2), 100, dtype=np.int32),
            np.full((2, 2), 200, dtype=np.int64),
        ]
        merged = RingAllReduce(link=NVLINK).reduce(arrays)
        assert merged.dtype == np.int64
        np.testing.assert_array_equal(merged, np.full((2, 2), 300, dtype=np.int64))

    def test_reduce_rejects_int32_wire_overflow(self):
        # Two int64 partials whose sum no longer fits the int32 wire
        # format the cost is charged on: silently truncating would
        # under-cost the collective, so it must raise instead.
        half = np.full((2, 2), 2**31 - 1, dtype=np.int64)
        with pytest.raises(OverflowError, match="int32 wire format"):
            RingAllReduce(link=NVLINK).reduce([half, half])

    def test_reduce_catches_overflow_of_int32_inputs(self):
        # Partials already at the wire width must not wrap inside the
        # accumulator before the guard runs: 4 x 2**30 is exactly 2**32,
        # which an int32 accumulator would fold to zero.
        partial = np.full((2, 2), 2**30, dtype=np.int32)
        with pytest.raises(OverflowError, match="int32 wire format"):
            RingAllReduce(link=NVLINK).reduce([partial] * 4)

    def test_reduce_at_wire_limit_is_accepted(self):
        below = np.full((2, 2), 2**30, dtype=np.int64)
        merged = RingAllReduce(link=NVLINK).reduce([below, below - 1])
        assert merged.max() == 2**31 - 1

    def test_wider_wire_format_lifts_the_limit(self):
        half = np.full((2, 2), 2**31 - 1, dtype=np.int64)
        merged = RingAllReduce(link=NVLINK, element_bytes=8).reduce([half, half])
        assert merged.max() == 2 * (2**31 - 1)

    def test_single_device_is_free(self):
        cost = RingAllReduce(link=PCIE_P2P).cost(10_000, num_devices=1)
        assert cost.seconds == 0.0
        assert cost.num_steps == 0

    def test_cost_grows_with_devices(self):
        ring = RingAllReduce(link=PCIE_P2P)
        costs = [ring.cost(1_000_000, n).seconds for n in (2, 4, 8)]
        assert costs[0] < costs[1] < costs[2]

    def test_bandwidth_term_matches_closed_form(self):
        num_elements, devices = 1_000_000, 4
        cost = RingAllReduce(link=NVLINK).cost(num_elements, devices)
        num_bytes = num_elements * 4
        steps = 2 * (devices - 1)
        expected = steps * (
            NVLINK.latency_seconds + num_bytes / devices / NVLINK.effective_bandwidth
        )
        assert cost.seconds == pytest.approx(expected)

    def test_faster_link_is_faster(self):
        slow = RingAllReduce(link=PCIE_P2P).cost(4_000_000, 4).seconds
        fast = RingAllReduce(link=NVLINK).cost(4_000_000, 4).seconds
        assert fast < slow

    def test_exposed_seconds_overlap(self):
        cost = AllReduceCost(
            seconds=1.0, bytes_per_device=1.0, wire_bytes_per_device=1.0, num_steps=2
        )
        assert exposed_allreduce_seconds(cost, 0.4, overlappable=True) == pytest.approx(0.6)
        # Only the reduce-scatter half can hide: a huge window still leaves
        # the all-gather half exposed.
        assert exposed_allreduce_seconds(cost, 2.0, overlappable=True) == pytest.approx(0.5)
        assert exposed_allreduce_seconds(cost, 2.0, overlappable=False) == 1.0


class TestDevicePool:
    def test_homogeneous_pool(self):
        pool = DevicePool.homogeneous(GTX_1080, 4, NVLINK)
        assert pool.num_devices == 4
        assert pool.total_memory_bytes == 4 * GTX_1080.global_memory_bytes
        assert pool.fits_replicated(GTX_1080.global_memory_bytes)
        assert not pool.fits_replicated(GTX_1080.global_memory_bytes + 1)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            DevicePool(devices=(), interconnect=NVLINK)

    def test_interconnect_lookup(self):
        assert get_interconnect("nvlink") is NVLINK
        assert get_interconnect("PCIe") is PCIE_P2P
        with pytest.raises(KeyError):
            get_interconnect("infiniband")

    def test_ring_allreduce_seconds_validation(self):
        with pytest.raises(ValueError):
            CostModel.ring_allreduce_seconds(1.0, 0, NVLINK)
        with pytest.raises(ValueError):
            CostModel.ring_allreduce_seconds(-1.0, 2, NVLINK)
        assert CostModel.ring_allreduce_seconds(0.0, 4, NVLINK) == 0.0
