"""Regression tests for the schedule-derived all-reduce overlap window.

The exposed collective used to hide behind a hard-coded half of the
slowest device's sampling phase; it now hides behind the window derived
from the per-chunk word-completion times of ``saberlda.scheduling``, so
it must *respond to chunk skew*: a stream whose words finalise late
leaves less room to overlap than one that front-loads its work.
"""

import numpy as np
import pytest

from repro.corpus import generate_lda_corpus
from repro.distributed import train_distributed
from repro.gpusim import GTX_1080, PCIE_P2P
from repro.saberlda import SaberLDAConfig
from repro.saberlda.layout import build_layout
from repro.saberlda.scheduling import (
    allreduce_overlap_fraction,
    alltoall_overlap_fraction,
    column_finalization_fractions,
    dynamic_finish_times,
    word_finalization_fractions,
)


class TestDynamicFinishTimes:
    def test_single_processor_is_cumulative(self):
        finishes = dynamic_finish_times([3, 5, 2], num_processors=1)
        assert finishes == [3.0, 8.0, 10.0]

    def test_many_processors_run_concurrently(self):
        finishes = dynamic_finish_times([3, 5, 2], num_processors=3)
        assert finishes == [3.0, 5.0, 2.0]

    def test_makespan_matches_simulate_dynamic_schedule(self):
        from repro.saberlda.scheduling import simulate_dynamic_schedule

        sizes = [13, 7, 2, 40, 9, 9, 1]
        finishes = dynamic_finish_times(sizes, num_processors=3)
        outcome = simulate_dynamic_schedule(sizes, num_processors=3)
        assert max(finishes) == pytest.approx(outcome.makespan_units)

    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            dynamic_finish_times([1], num_processors=0)


@pytest.fixture(scope="module")
def layouts(make_corpus):
    corpus = make_corpus(200, 400, 8, 60, 21)
    config = SaberLDAConfig.paper_defaults(8, num_chunks=6, seed=21)
    return build_layout(corpus.tokens.copy(), corpus.num_documents, config)


class TestWordFinalization:
    def test_fractions_in_unit_interval(self, layouts):
        fractions = word_finalization_fractions(layouts, num_processors=40)
        assert fractions.size > 0
        assert np.all(fractions > 0.0)
        assert np.all(fractions <= 1.0)

    def test_one_fraction_per_distinct_word(self, layouts):
        distinct = len(
            set(
                int(word)
                for layout in layouts
                for word in np.unique(layout.tokens.word_ids)
            )
        )
        fractions = word_finalization_fractions(layouts, num_processors=40)
        assert fractions.size == distinct

    def test_empty_stream_yields_no_fractions(self):
        assert word_finalization_fractions([], num_processors=4).size == 0

    def test_overlap_fraction_bounds(self, layouts):
        fraction = allreduce_overlap_fraction(layouts, num_processors=40)
        assert 0.0 < fraction < 1.0

    def test_overlap_fraction_of_empty_stream_is_zero(self):
        assert allreduce_overlap_fraction([], num_processors=4) == 0.0


class TestColumnFinalization:
    """Per-*column* readiness — what gates the all-to-all's column blocks."""

    def test_fractions_in_unit_interval(self, layouts):
        fractions = column_finalization_fractions(layouts, 40, num_topics=8)
        assert fractions.size > 0
        assert np.all(fractions > 0.0)
        assert np.all(fractions <= 1.0)

    def test_one_fraction_per_touched_topic(self, layouts):
        touched = len(
            set(
                int(topic)
                for layout in layouts
                for topic in np.unique(layout.tokens.topics)
                if topic >= 0
            )
        )
        fractions = column_finalization_fractions(layouts, 40, num_topics=8)
        assert fractions.size == touched

    def test_empty_stream_yields_no_fractions(self):
        assert column_finalization_fractions([], 4, num_topics=8).size == 0
        assert alltoall_overlap_fraction([], 4, num_topics=8) == 0.0

    def test_columns_finalise_later_than_words(self, layouts):
        """Any word may draw any topic, so columns stay dirty deep into the
        stream: the per-column window must be tighter than the per-word one."""
        processors = GTX_1080.num_sms * 2
        column = alltoall_overlap_fraction(layouts, processors, num_topics=8)
        word = allreduce_overlap_fraction(layouts, processors)
        assert 0.0 <= column < word

    def test_topic_confined_to_late_chunk_finalises_late(self):
        """Chunk-skew regression: a topic whose last tokens sit in the final
        chunk ships later than one confined to the first chunk."""
        corpus = generate_lda_corpus(
            num_documents=120,
            vocabulary_size=300,
            num_topics=4,
            mean_document_length=40,
            seed=5,
        )
        config = SaberLDAConfig.paper_defaults(4, num_chunks=4, seed=5)

        def confined(topic_for_last_chunk: int) -> float:
            tokens = corpus.tokens.copy()
            tokens.topics[:] = 0
            # Documents [90, 120) land in the last of 4 chunks.
            last_chunk = tokens.doc_ids >= 90
            tokens.topics[last_chunk] = topic_for_last_chunk
            layouts = build_layout(tokens, corpus.num_documents, config)
            fractions = column_finalization_fractions(layouts, 40, num_topics=4)
            return fractions

        fractions = confined(3)
        # Two touched columns: topic 0 (everywhere, so last-touched late)
        # and topic 3 (only the last chunk, also late) — both near 1.
        assert fractions.size == 2
        tokens = corpus.tokens.copy()
        tokens.topics[:] = 0
        early = tokens.doc_ids < 30  # first chunk only
        tokens.topics[early] = 3
        layouts = build_layout(tokens, corpus.num_documents, config)
        early_fractions = column_finalization_fractions(layouts, 40, num_topics=4)
        # Topic 3 now finalises inside the first chunk: its fraction is the
        # smallest and strictly below the everywhere-topic's.
        assert early_fractions.size == 2
        assert early_fractions[0] < early_fractions[1]
        assert early_fractions[0] < fractions.min()

    def test_exposed_alltoall_tracks_columns_not_words(self):
        """End-to-end regression: the hybrid trainer's all-to-all hides behind
        the per-column window, which is strictly tighter than the per-word
        window the ring uses on the same stream.

        With uniformly spread topics every column stays dirty until the last
        chunk's last runs, so the all-to-all is (nearly) fully exposed even
        though the ring — gated on per-word last touches — still hides part
        of itself.  Before the per-column model both collectives shared the
        word window and these shares were equal by construction.
        """
        config = SaberLDAConfig.paper_defaults(
            8, num_iterations=1, num_chunks=4, seed=33, evaluate_every=5
        )
        corpus, tokens = TestWindowRespondsToChunkSkew._skewed_corpus(back_loaded=True)
        hybrid = train_distributed(
            tokens.copy(),
            240,
            corpus.vocabulary_size,
            config,
            num_devices=2,
            interconnect=PCIE_P2P,
            parallelism="hybrid",
        )
        data = train_distributed(
            tokens.copy(),
            240,
            corpus.vocabulary_size,
            config,
            num_devices=2,
            interconnect=PCIE_P2P,
            parallelism="data",
        )
        a2a = hybrid.history[-1]
        ring = data.history[-1]
        assert a2a.alltoall_seconds > 0.0
        assert ring.allreduce_seconds > 0.0
        a2a_share = a2a.exposed_alltoall_seconds / a2a.alltoall_seconds
        ring_share = ring.exposed_allreduce_seconds / ring.allreduce_seconds
        assert a2a_share > ring_share
        assert ring_share < 1.0


class TestWindowRespondsToChunkSkew:
    """The load-bearing regression: skew must move the window and the exposed time."""

    @staticmethod
    def _skewed_corpus(back_loaded: bool, num_documents=240, seed=33):
        corpus = generate_lda_corpus(
            num_documents=num_documents,
            vocabulary_size=500,
            num_topics=8,
            mean_document_length=50,
            seed=seed,
        )
        tokens = corpus.tokens.copy()
        # Chunks cut by document range: remapping document ids so most
        # tokens live in the first (or last) documents skews the chunk
        # token counts without changing any word statistics.
        order = np.argsort(tokens.doc_ids, kind="stable")
        ranks = np.empty_like(order)
        ranks[order] = np.arange(len(order))
        squeeze = (ranks / len(ranks)) ** 2  # dense at 0
        if back_loaded:
            squeeze = 1.0 - squeeze
        new_docs = np.minimum(
            (squeeze * num_documents).astype(np.int64), num_documents - 1
        )
        tokens.doc_ids[:] = np.sort(new_docs)[ranks]
        return corpus, tokens

    def test_window_tracks_where_words_are_last_touched(self):
        config = SaberLDAConfig.paper_defaults(8, num_chunks=6, seed=33)
        _, front_tokens = self._skewed_corpus(back_loaded=False)
        _, back_tokens = self._skewed_corpus(back_loaded=True)
        processors = GTX_1080.num_sms * 2
        front_layouts = build_layout(front_tokens, 240, config)
        back_layouts = build_layout(back_tokens, 240, config)
        front = allreduce_overlap_fraction(front_layouts, processors)
        back = allreduce_overlap_fraction(back_layouts, processors)
        # What gates the reduce-scatter is the *last* touch of each word.
        # Front-loaded streams end with tiny chunks that still re-dirty
        # most words right before the barrier, so almost nothing ships
        # early; a heavy final chunk spreads the last touches across its
        # long makespan instead.  The old hard-coded model gave both 0.5.
        assert back > front
        assert front != pytest.approx(back)

    def test_exposed_allreduce_differs_between_skews(self):
        """End-to-end: the trainer's exposed time must track the window."""
        config = SaberLDAConfig.paper_defaults(
            8, num_iterations=1, num_chunks=4, seed=33, evaluate_every=5
        )
        exposed = {}
        for label, back_loaded in (("front", False), ("back", True)):
            corpus, tokens = self._skewed_corpus(back_loaded)
            result = train_distributed(
                tokens,
                240,
                corpus.vocabulary_size,
                config,
                num_devices=2,
                interconnect=PCIE_P2P,
            )
            record = result.history[-1]
            # Normalise by the collective size: both corpora share V and K,
            # so allreduce_seconds match and the exposed share isolates the
            # window.
            exposed[label] = (
                record.exposed_allreduce_seconds / record.allreduce_seconds
            )
        assert exposed["front"] != exposed["back"]

    def test_window_no_longer_hard_coded_half(self, layouts):
        """The 0.5 constant is gone: the fraction is data-dependent."""
        fraction = allreduce_overlap_fraction(layouts, GTX_1080.num_sms * 2)
        assert fraction != pytest.approx(0.5, abs=1e-6)
