"""Equivalence and scaling tests for the data-parallel trainer.

The load-bearing guarantees: an ``N``-device run is *bit-identical* to
the single-device trainer at the same seed (ESCA is bulk-synchronous),
and the simulated time improves with devices until the ring all-reduce
binds.
"""

import numpy as np
import pytest

from repro.core import word_topic_digest
from repro.distributed import (
    DistributedTrainer,
    measure_scaling,
    train_distributed,
)
from repro.gpusim import NVLINK, PCIE_P2P
from repro.saberlda import SaberLDAConfig, train_saberlda


@pytest.fixture(scope="module")
def corpus(make_corpus):
    return make_corpus(120, 300, 8, 50, 3)


@pytest.fixture(scope="module")
def config():
    # num_chunks is a multiple of every tested pool size so the single- and
    # multi-device runs use the identical chunk layout.
    return SaberLDAConfig.paper_defaults(8, num_iterations=3, num_chunks=8, seed=5)


@pytest.fixture(scope="module")
def single_result(corpus, config):
    return train_saberlda(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
    )


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("num_devices", [2, 3, 4])
    def test_word_topic_counts_bit_identical(
        self, corpus, config, single_result, num_devices
    ):
        dist = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=num_devices,
        )
        np.testing.assert_array_equal(
            dist.model.word_topic_counts, single_result.model.word_topic_counts
        )
        assert word_topic_digest(dist.model.word_topic_counts) == word_topic_digest(
            single_result.model.word_topic_counts
        )

    def test_topics_and_doc_topic_identical(self, corpus, config, single_result):
        dist = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=4,
        )
        np.testing.assert_array_equal(
            dist.doc_topic.to_dense(), single_result.doc_topic.to_dense()
        )

    def test_log_likelihood_trajectory_identical(self, corpus, config, single_result):
        dist = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=2,
        )
        single_lls = [r.log_likelihood_per_token for r in single_result.history]
        dist_lls = [r.log_likelihood_per_token for r in dist.history]
        assert dist_lls == single_lls

    def test_interconnect_does_not_change_statistics(self, corpus, config):
        pcie = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=4,
            interconnect=PCIE_P2P,
        )
        nvlink = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=4,
            interconnect=NVLINK,
        )
        np.testing.assert_array_equal(
            pcie.model.word_topic_counts, nvlink.model.word_topic_counts
        )
        assert nvlink.simulated_seconds < pcie.simulated_seconds

    def test_run_is_reproducible(self, corpus, config):
        runs = [
            train_distributed(
                corpus.unassigned_copy(),
                corpus.num_documents,
                corpus.vocabulary_size,
                config,
                num_devices=3,
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            runs[0].model.word_topic_counts, runs[1].model.word_topic_counts
        )
        assert runs[0].simulated_seconds == runs[1].simulated_seconds


class TestRecordsAndAccounting:
    @pytest.fixture(scope="class")
    def result(self, corpus, config):
        return train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=4,
        )

    def test_per_device_phase_timings_present(self, result):
        for record in result.history:
            assert len(record.per_device_phase_seconds) == 4
            for phases in record.per_device_phase_seconds:
                assert {"sampling", "a_update", "preprocessing", "transfer"} <= set(phases)
                assert all(seconds >= 0 for seconds in phases.values())

    def test_iteration_time_is_barrier_plus_exposed_allreduce(self, result):
        for record in result.history:
            assert record.simulated_seconds == pytest.approx(
                record.barrier_seconds + record.exposed_allreduce_seconds
            )
            assert 0.0 <= record.exposed_allreduce_seconds <= record.allreduce_seconds

    def test_cumulative_time_monotone(self, result):
        cumulative = [r.cumulative_simulated_seconds for r in result.history]
        assert all(b > a for a, b in zip(cumulative, cumulative[1:], strict=False))

    def test_balance_efficiency_in_unit_interval(self, result):
        for record in result.history:
            assert 0.0 < record.balance_efficiency <= 1.0

    def test_metadata_describes_the_pool(self, result):
        metadata = result.model.metadata
        assert metadata["system"] == "SaberLDA-distributed"
        assert metadata["num_devices"] == 4
        assert result.num_devices == 4

    def test_throughput_positive(self, result):
        assert result.throughput_tokens_per_second() > 0
        assert 0.0 <= result.allreduce_share() < 1.0

    def test_phase_breakdown_includes_allreduce(self, result):
        breakdown = result.phase_breakdown()
        assert "allreduce" in breakdown
        assert breakdown["sampling"] > 0


class TestScaling:
    @pytest.fixture(scope="class")
    def scaling_corpus(self, make_corpus):
        # Compute-dominated workload: enough tokens that the per-device
        # E-step dwarfs the (replicated) preprocessing and the ring.
        return make_corpus(800, 1000, 16, 100, 9)

    @pytest.fixture(scope="class")
    def points(self, scaling_corpus):
        config = SaberLDAConfig.paper_defaults(
            16, num_iterations=1, num_chunks=8, seed=1, evaluate_every=5
        )
        return measure_scaling(
            scaling_corpus.unassigned_copy(),
            scaling_corpus.num_documents,
            scaling_corpus.vocabulary_size,
            config,
            device_counts=[1, 2, 4],
            interconnect=NVLINK,
        )

    def test_simulated_time_decreases_until_allreduce_bound(self, points):
        seconds = [point.simulated_seconds for point in points]
        assert seconds[0] > seconds[1] > seconds[2]

    def test_speedup_above_threshold_at_four_devices(self, points):
        by_devices = {point.num_devices: point for point in points}
        assert by_devices[4].speedup > 1.5
        assert by_devices[2].speedup > 1.3

    def test_efficiency_decays_monotonically(self, points):
        efficiencies = [point.efficiency for point in points]
        assert all(a >= b for a, b in zip(efficiencies, efficiencies[1:], strict=False))

    def test_baseline_and_pool_points_share_one_chunking(self, tiny_corpus):
        """A low configured chunk count must not skew the speedup baseline."""
        config = SaberLDAConfig.paper_defaults(
            4, num_iterations=1, num_chunks=2, seed=3, evaluate_every=5
        )
        points = measure_scaling(
            tiny_corpus.unassigned_copy(),
            tiny_corpus.num_documents,
            tiny_corpus.vocabulary_size,
            config,
            device_counts=[1, 4],
            interconnect=NVLINK,
        )
        # The common chunking is 2 * max(device_counts) = 8; the 1-device
        # baseline must match a plain run on that chunking, not on 2 chunks.
        reference = train_saberlda(
            tiny_corpus.unassigned_copy(),
            tiny_corpus.num_documents,
            tiny_corpus.vocabulary_size,
            config.with_overrides(num_chunks=8),
        )
        assert points[0].simulated_seconds == pytest.approx(reference.simulated_seconds)

    def test_allreduce_bound_caps_tiny_workloads(self, tiny_corpus):
        # On a tiny matrix the ring latency dominates: adding devices past
        # the bound makes the simulated time worse, not better.
        config = SaberLDAConfig.paper_defaults(
            4, num_iterations=1, num_chunks=16, seed=2, evaluate_every=5
        )
        few = train_distributed(
            tiny_corpus.unassigned_copy(),
            tiny_corpus.num_documents,
            tiny_corpus.vocabulary_size,
            config,
            num_devices=2,
            interconnect=PCIE_P2P,
        )
        many = train_distributed(
            tiny_corpus.unassigned_copy(),
            tiny_corpus.num_documents,
            tiny_corpus.vocabulary_size,
            config,
            num_devices=8,
            interconnect=PCIE_P2P,
        )
        assert many.simulated_seconds > few.simulated_seconds


class TestValidation:
    def test_rejects_nonpositive_device_count(self, config):
        with pytest.raises(ValueError):
            DistributedTrainer(config=config, num_devices=0)

    def test_single_device_pool_matches_sequential_trainer(self, corpus, config, single_result):
        dist = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=1,
        )
        np.testing.assert_array_equal(
            dist.model.word_topic_counts, single_result.model.word_topic_counts
        )
        assert dist.history[-1].allreduce_seconds == 0.0
