"""Tests for the wall-clock timing helpers of the benchmark harness."""

import pytest

from repro.bench import WallClockTiming, wall_clock, wall_timer


class TestWallClock:
    def test_runs_warmup_plus_repeat_times(self):
        calls = []
        timing = wall_clock(lambda: calls.append(1), repeat=3, warmup=2)
        assert len(calls) == 5
        assert timing.repeat == 3
        assert timing.warmup == 2
        assert len(timing.seconds) == 3

    def test_statistics(self):
        timing = WallClockTiming(seconds=(0.2, 0.1, 0.4), warmup=1)
        assert timing.best == 0.1
        assert timing.mean == pytest.approx(0.7 / 3)
        assert timing.throughput(50) == pytest.approx(500.0)

    def test_zero_best_yields_zero_throughput(self):
        assert WallClockTiming(seconds=(0.0,), warmup=0).throughput(10) == 0.0

    def test_decorator_form(self):
        @wall_clock(repeat=2, warmup=0)
        def workload(value):
            return value * 2

        timing = workload(21)
        assert isinstance(timing, WallClockTiming)
        assert timing.repeat == 2
        assert all(second >= 0 for second in timing.seconds)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="repeat"):
            wall_clock(lambda: None, repeat=0)
        with pytest.raises(ValueError, match="warmup"):
            wall_clock(lambda: None, warmup=-1)

    def test_measured_seconds_reflect_the_workload(self):
        import time

        timing = wall_clock(lambda: time.sleep(0.01), repeat=2, warmup=0)
        assert min(timing.seconds) >= 0.009


class TestWallTimer:
    def test_times_the_body(self):
        import time

        with wall_timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009

    def test_records_even_when_the_body_raises(self):
        with pytest.raises(RuntimeError):
            with wall_timer() as timer:
                raise RuntimeError("boom")
        assert timer.seconds >= 0.0
