"""Tests for the token list representation."""

import numpy as np
import pytest

from repro.core import TokenList


class TestConstruction:
    def test_from_pairs_has_unassigned_topics(self):
        tokens = TokenList.from_pairs([0, 0, 1], [3, 2, 1])
        assert (tokens.topics == -1).all()

    def test_empty(self):
        tokens = TokenList.empty()
        assert tokens.num_tokens == 0
        assert tokens.num_documents == 0
        assert tokens.vocabulary_size == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TokenList(np.array([0, 1]), np.array([0]), np.array([0, 1]))

    def test_counts_from_fig1_example(self, tiny_tokens):
        assert tiny_tokens.num_tokens == 8
        assert tiny_tokens.num_documents == 3
        assert tiny_tokens.vocabulary_size == 5


class TestSorting:
    def test_sorted_by_doc_groups_documents(self, tiny_tokens):
        by_doc = tiny_tokens.sorted_by("doc")
        assert list(by_doc.doc_ids) == sorted(tiny_tokens.doc_ids)

    def test_sorted_by_word_groups_words(self, tiny_tokens):
        by_word = tiny_tokens.sorted_by("word")
        assert list(by_word.word_ids) == sorted(tiny_tokens.word_ids)

    def test_sort_preserves_token_multiset(self, tiny_tokens):
        by_word = tiny_tokens.sorted_by("word")
        original = sorted(zip(tiny_tokens.doc_ids, tiny_tokens.word_ids, tiny_tokens.topics, strict=True))
        permuted = sorted(zip(by_word.doc_ids, by_word.word_ids, by_word.topics, strict=True))
        assert original == permuted

    def test_invalid_order_rejected(self, tiny_tokens):
        with pytest.raises(ValueError):
            tiny_tokens.sorted_by("topic")


class TestHistograms:
    def test_tokens_per_document(self, tiny_tokens):
        assert list(tiny_tokens.tokens_per_document()) == [2, 4, 2]

    def test_tokens_per_word(self, tiny_tokens):
        # apple (id 2) occurs three times in the Fig. 1 example.
        assert tiny_tokens.tokens_per_word()[2] == 3

    def test_tokens_per_word_with_padding(self, tiny_tokens):
        histogram = tiny_tokens.tokens_per_word(vocabulary_size=10)
        assert len(histogram) == 10
        assert histogram[9] == 0


class TestTransformations:
    def test_randomize_topics_within_range(self, tiny_tokens, rng):
        tokens = tiny_tokens.copy()
        tokens.randomize_topics(4, rng)
        assert tokens.topics.min() >= 0
        assert tokens.topics.max() < 4

    def test_copy_is_independent(self, tiny_tokens):
        copy = tiny_tokens.copy()
        copy.topics[0] = 99
        assert tiny_tokens.topics[0] != 99

    def test_select_mask(self, tiny_tokens):
        selected = tiny_tokens.select(tiny_tokens.doc_ids == 1)
        assert selected.num_tokens == 4
        assert (selected.doc_ids == 1).all()

    def test_concat(self, tiny_tokens):
        combined = tiny_tokens.concat(tiny_tokens)
        assert combined.num_tokens == 16

    def test_iteration_yields_triplets(self, tiny_tokens):
        triplets = list(tiny_tokens)
        assert triplets[0] == (0, 0, 2)
        assert len(triplets) == 8
