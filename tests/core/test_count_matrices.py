"""Tests for the count matrices (A, B, B̂)."""

import numpy as np
import pytest

from repro.core import (
    SparseDocTopicMatrix,
    count_by_doc_topic_dense,
    count_by_word_topic,
    normalize_word_topic,
)


class TestWordTopicCounts:
    def test_fig1_example(self, tiny_tokens):
        matrix = count_by_word_topic(tiny_tokens, vocabulary_size=5, num_topics=3)
        # iOS appears twice with topic 3 (0-based: 2).
        assert matrix[0, 2] == 2
        # apple appears twice with topic 1 (0-based: 0) and once with topic 2 (0-based: 1).
        assert matrix[2, 0] == 2
        assert matrix[2, 1] == 1

    def test_total_equals_num_tokens(self, tiny_tokens):
        matrix = count_by_word_topic(tiny_tokens, 5, 3)
        assert matrix.sum() == tiny_tokens.num_tokens

    def test_requires_assigned_topics(self):
        from repro.core import TokenList

        tokens = TokenList.from_pairs([0, 1], [0, 1])
        with pytest.raises(ValueError):
            count_by_word_topic(tokens, 2, 2)


class TestDocTopicDense:
    def test_fig1_example(self, tiny_tokens):
        matrix = count_by_doc_topic_dense(tiny_tokens, num_documents=3, num_topics=3)
        assert matrix[0, 2] == 2  # document 1 has two tokens of topic 3
        assert matrix[1, 0] == 3  # document 2 has three tokens of topic 1
        assert matrix[2, 1] == 2  # document 3 has two tokens of topic 2

    def test_row_sums_are_document_lengths(self, tiny_tokens):
        matrix = count_by_doc_topic_dense(tiny_tokens, 3, 3)
        assert list(matrix.sum(axis=1)) == [2, 4, 2]


class TestNormalizeWordTopic:
    def test_columns_sum_to_one(self, tiny_tokens):
        counts = count_by_word_topic(tiny_tokens, 5, 3)
        normalized = normalize_word_topic(counts, beta=0.01)
        np.testing.assert_allclose(normalized.sum(axis=0), np.ones(3))

    def test_values_roughly_proportional_to_counts(self, tiny_tokens):
        counts = count_by_word_topic(tiny_tokens, 5, 3)
        normalized = normalize_word_topic(counts, beta=1e-6)
        column = counts[:, 0] / counts[:, 0].sum()
        np.testing.assert_allclose(normalized[:, 0], column, atol=1e-4)

    def test_smoothing_gives_nonzero_probability(self):
        counts = np.zeros((4, 2))
        normalized = normalize_word_topic(counts, beta=0.5)
        assert (normalized > 0).all()


class TestSparseDocTopicMatrix:
    def test_matches_dense(self, tiny_tokens):
        sparse = SparseDocTopicMatrix.from_tokens(tiny_tokens, 3, 3)
        dense = count_by_doc_topic_dense(tiny_tokens, 3, 3)
        np.testing.assert_array_equal(sparse.to_dense(), dense)

    def test_row_access(self, tiny_tokens):
        sparse = SparseDocTopicMatrix.from_tokens(tiny_tokens, 3, 3)
        topics, counts = sparse.row(1)
        assert dict(zip(topics.tolist(), counts.tolist(), strict=True)) == {0: 3, 2: 1}

    def test_row_nnz_and_mean(self, tiny_tokens):
        sparse = SparseDocTopicMatrix.from_tokens(tiny_tokens, 3, 3)
        assert sparse.row_nnz(0) == 1
        assert sparse.row_nnz(1) == 2
        assert sparse.mean_row_nnz() == pytest.approx(4 / 3)

    def test_total_count(self, tiny_tokens):
        sparse = SparseDocTopicMatrix.from_tokens(tiny_tokens, 3, 3)
        assert sparse.total_count() == tiny_tokens.num_tokens

    def test_from_dense_round_trip(self, rng):
        dense = rng.integers(0, 4, size=(6, 5))
        sparse = SparseDocTopicMatrix.from_dense(dense)
        np.testing.assert_array_equal(sparse.to_dense(), dense)

    def test_empty_matrix(self):
        sparse = SparseDocTopicMatrix.empty(4, 3)
        assert sparse.num_nonzeros == 0
        assert sparse.to_dense().sum() == 0

    def test_memory_smaller_than_dense_when_sparse(self, small_corpus):
        tokens = small_corpus.tokens
        num_topics = 500
        sparse = SparseDocTopicMatrix.from_tokens(tokens, small_corpus.num_documents, num_topics)
        dense_bytes = small_corpus.num_documents * num_topics * 4
        assert sparse.memory_bytes() < dense_bytes

    def test_slice_documents(self, tiny_tokens):
        sparse = SparseDocTopicMatrix.from_tokens(tiny_tokens, 3, 3)
        sliced = sparse.slice_documents(1, 3)
        np.testing.assert_array_equal(sliced.to_dense(), sparse.to_dense()[1:3])

    def test_indptr_length_validated(self):
        with pytest.raises(ValueError):
            SparseDocTopicMatrix(
                num_documents=2,
                num_topics=3,
                indptr=np.array([0, 1]),
                indices=np.array([0]),
                values=np.array([1]),
            )
