"""Tests for LDA hyper-parameters."""

import dataclasses

import pytest

from repro.core import LDAHyperParams


class TestPaperDefaults:
    def test_alpha_is_fifty_over_k(self):
        params = LDAHyperParams.paper_defaults(1000)
        assert params.alpha == pytest.approx(0.05)

    def test_beta_default(self):
        params = LDAHyperParams.paper_defaults(100)
        assert params.beta == pytest.approx(0.01)

    def test_custom_beta(self):
        params = LDAHyperParams.paper_defaults(100, beta=0.1)
        assert params.beta == pytest.approx(0.1)

    def test_num_topics_stored(self):
        assert LDAHyperParams.paper_defaults(17).num_topics == 17


class TestValidation:
    def test_rejects_zero_topics(self):
        with pytest.raises(ValueError):
            LDAHyperParams(num_topics=0, alpha=0.1, beta=0.01)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LDAHyperParams(num_topics=5, alpha=-1.0, beta=0.01)

    def test_rejects_zero_beta(self):
        with pytest.raises(ValueError):
            LDAHyperParams(num_topics=5, alpha=0.1, beta=0.0)


class TestWithTopics:
    def test_changes_only_topic_count(self):
        params = LDAHyperParams(num_topics=10, alpha=0.3, beta=0.02)
        updated = params.with_topics(50)
        assert updated.num_topics == 50
        assert updated.alpha == pytest.approx(0.3)
        assert updated.beta == pytest.approx(0.02)

    def test_is_frozen(self):
        params = LDAHyperParams.paper_defaults(10)
        with pytest.raises(dataclasses.FrozenInstanceError):
            params.num_topics = 20  # type: ignore[misc]
