"""Tests for the log-likelihood metrics."""

import numpy as np
import pytest

from repro.core import (
    LDAHyperParams,
    count_by_doc_topic_dense,
    count_by_word_topic,
    heldout_log_likelihood,
    log_likelihood_from_tokens,
    split_heldout_documents,
    training_log_likelihood,
)
from repro.core.likelihood import LikelihoodResult, document_topic_distributions


class TestLikelihoodResult:
    def test_per_token(self):
        result = LikelihoodResult(total_log_likelihood=-100.0, num_tokens=50)
        assert result.per_token == pytest.approx(-2.0)

    def test_empty(self):
        result = LikelihoodResult(0.0, 0)
        assert result.per_token == 0.0

    def test_perplexity(self):
        result = LikelihoodResult(total_log_likelihood=-np.log(8.0), num_tokens=1)
        assert result.perplexity == pytest.approx(8.0)


class TestDocumentTopicDistributions:
    def test_rows_sum_to_one(self, rng):
        counts = rng.integers(0, 10, size=(5, 4))
        theta = document_topic_distributions(counts, alpha=0.1)
        np.testing.assert_allclose(theta.sum(axis=1), np.ones(5))

    def test_empty_document_is_uniform(self):
        theta = document_topic_distributions(np.zeros((1, 4)), alpha=0.5)
        np.testing.assert_allclose(theta[0], np.full(4, 0.25))


class TestTrainingLikelihood:
    def test_bounded_above_by_zero(self, tiny_tokens, params):
        params = LDAHyperParams(num_topics=3, alpha=0.1, beta=0.01)
        doc_topic = count_by_doc_topic_dense(tiny_tokens, 3, 3)
        word_topic = count_by_word_topic(tiny_tokens, 5, 3)
        result = training_log_likelihood(tiny_tokens, doc_topic, word_topic, params)
        assert result.per_token < 0.0

    def test_better_than_uniform_model(self, small_corpus):
        params = LDAHyperParams.paper_defaults(6)
        result = log_likelihood_from_tokens(
            small_corpus.tokens,
            small_corpus.num_documents,
            small_corpus.vocabulary_size,
            params,
        )
        uniform = -np.log(small_corpus.vocabulary_size)
        assert result.per_token > uniform

    def test_empty_tokens(self, params):
        from repro.core import TokenList

        result = training_log_likelihood(
            TokenList.empty(), np.zeros((0, 8)), np.zeros((5, 8)), params
        )
        assert result.num_tokens == 0


class TestHeldout:
    def test_split_preserves_tokens(self, small_corpus, rng):
        observed, evaluation = split_heldout_documents(small_corpus.tokens, rng)
        assert observed.num_tokens + evaluation.num_tokens == small_corpus.num_tokens

    def test_split_fraction_respected_roughly(self, small_corpus, rng):
        observed, _evaluation = split_heldout_documents(
            small_corpus.tokens, rng, observed_fraction=0.7
        )
        fraction = observed.num_tokens / small_corpus.num_tokens
        assert 0.6 < fraction < 0.8

    def test_split_rejects_bad_fraction(self, small_corpus, rng):
        with pytest.raises(ValueError):
            split_heldout_documents(small_corpus.tokens, rng, observed_fraction=1.5)

    def test_heldout_likelihood_is_finite_and_negative(self, small_corpus, rng):
        params = LDAHyperParams.paper_defaults(6)
        word_topic = count_by_word_topic(
            small_corpus.tokens, small_corpus.vocabulary_size, 6
        )
        result = heldout_log_likelihood(small_corpus.tokens, word_topic, params, rng)
        assert np.isfinite(result.per_token)
        assert result.per_token < 0.0

    def test_heldout_improves_with_trained_counts(self, small_corpus, rng):
        """A model trained on the data should beat a model with shuffled word ids."""
        params = LDAHyperParams.paper_defaults(6)
        trained = count_by_word_topic(small_corpus.tokens, small_corpus.vocabulary_size, 6)
        shuffled_tokens = small_corpus.tokens.copy()
        shuffled_tokens.word_ids = rng.permutation(shuffled_tokens.word_ids)
        shuffled = count_by_word_topic(shuffled_tokens, small_corpus.vocabulary_size, 6)
        good = heldout_log_likelihood(
            small_corpus.tokens, trained, params, np.random.default_rng(0)
        )
        bad = heldout_log_likelihood(
            small_corpus.tokens, shuffled, params, np.random.default_rng(0)
        )
        assert good.per_token > bad.per_token
