"""Tests for the trained-model container."""

import numpy as np
import pytest

from repro.core import LDAHyperParams, LDAModel, count_by_word_topic


@pytest.fixture
def model(tiny_tokens):
    params = LDAHyperParams(num_topics=3, alpha=0.1, beta=0.01)
    counts = count_by_word_topic(tiny_tokens, 5, 3)
    vocabulary = ["iOS", "Android", "apple", "iPhone", "orange"]
    return LDAModel(word_topic_counts=counts, params=params, vocabulary=vocabulary)


class TestShapes:
    def test_dimensions(self, model):
        assert model.num_topics == 3
        assert model.vocabulary_size == 5

    def test_mismatched_topics_rejected(self, tiny_tokens):
        params = LDAHyperParams(num_topics=4, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(tiny_tokens, 5, 3)
        with pytest.raises(ValueError):
            LDAModel(word_topic_counts=counts, params=params)

    def test_mismatched_vocabulary_rejected(self, tiny_tokens):
        params = LDAHyperParams(num_topics=3, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(tiny_tokens, 5, 3)
        with pytest.raises(ValueError):
            LDAModel(word_topic_counts=counts, params=params, vocabulary=["a", "b"])


class TestTopics:
    def test_distributions_sum_to_one_per_topic(self, model):
        phi = model.topic_word_distributions()
        np.testing.assert_allclose(phi.sum(axis=0), np.ones(3))

    def test_top_words_of_fruit_topic(self, model):
        # Topic 2 (0-based 1) contains "apple" and "orange" in the Fig. 1 example.
        words = [word for word, _prob in model.top_words(1, num_words=2)]
        assert set(words) == {"apple", "orange"}

    def test_top_words_probabilities_sorted(self, model):
        probabilities = [p for _w, p in model.top_words(0, num_words=5)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_invalid_topic_rejected(self, model):
        with pytest.raises(ValueError):
            model.top_words(10)

    def test_all_top_words_length(self, model):
        assert len(model.all_top_words(num_words=3)) == 3

    def test_word_name_fallback_without_vocabulary(self, tiny_tokens):
        params = LDAHyperParams(num_topics=3, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(tiny_tokens, 5, 3)
        model = LDAModel(word_topic_counts=counts, params=params)
        assert model.word_name(2) == "w2"


class TestInference:
    def test_inferred_mixture_sums_to_one(self, model):
        theta = model.infer_document([2, 4, 2])
        assert theta.sum() == pytest.approx(1.0)

    def test_fruit_document_prefers_fruit_topic(self, model):
        theta = model.infer_document([2, 4, 4, 2])  # apple, orange, orange, apple
        assert int(np.argmax(theta)) == 1

    def test_empty_document_is_uniform(self, model):
        theta = model.infer_document([])
        np.testing.assert_allclose(theta, np.full(3, 1 / 3))

    def test_coherence_proxy_in_unit_interval(self, model):
        value = model.topic_coherence_proxy(num_words=3)
        assert 0.0 < value <= 1.0


class TestFoldInPhi:
    """The guarded fold-in estimator (zero-count / corrupt rows)."""

    def test_matches_smoothed_estimator_for_healthy_counts(self, model):
        np.testing.assert_array_equal(
            model.fold_in_phi(), model.topic_word_distributions()
        )

    def test_zero_count_word_gets_positive_prior_weights(self, tiny_tokens):
        params = LDAHyperParams(num_topics=3, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(tiny_tokens, 5, 3)
        padded = np.vstack([counts, np.zeros((1, 3), dtype=np.int64)])
        model = LDAModel(word_topic_counts=padded, params=params)
        phi = model.fold_in_phi()
        assert np.isfinite(phi).all()
        assert (phi[-1] > 0.0).all()  # the unseen word still has fold-in mass

    def test_non_finite_rows_fall_back_to_symmetric_prior(self, tiny_tokens):
        params = LDAHyperParams(num_topics=3, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(tiny_tokens, 5, 3).astype(np.float64)
        counts[2, :] = np.nan  # a corrupt float checkpoint row
        model = LDAModel(word_topic_counts=counts, params=params)
        phi = model.fold_in_phi()
        assert np.isfinite(phi).all()
        # NaN poisons the column totals, so every row degrades to the
        # symmetric prior rather than NaN-ing the fold-in samplers.
        np.testing.assert_allclose(phi, 1.0 / 3.0)

    def test_infer_document_with_unseen_words_is_finite(self, tiny_tokens):
        params = LDAHyperParams(num_topics=3, alpha=0.1, beta=0.01)
        counts = count_by_word_topic(tiny_tokens, 5, 3)
        padded = np.vstack([counts, np.zeros((1, 3), dtype=np.int64)])
        model = LDAModel(word_topic_counts=padded, params=params)
        theta = model.infer_document([5, 5, 5])  # only the unseen word
        assert np.isfinite(theta).all()
        assert theta.sum() == pytest.approx(1.0)
