"""Engine mechanics: suppressions, module naming, collection, baselines."""

import os

from repro.analysis import (
    Baseline,
    Finding,
    apply_baseline,
    collect_files,
    module_name_for_path,
    parse_suppressions,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


class TestSuppressionParsing:
    def test_parses_rules_and_justification(self):
        source = "x = clock()  # detlint: ignore[DET003] -- benchmark harness\n"
        suppressions = parse_suppressions(source)
        assert list(suppressions) == [1]
        assert suppressions[1].rule_ids == ("DET003",)
        assert suppressions[1].justification == "benchmark harness"

    def test_multiple_rules_one_comment(self):
        source = "y = f()  # detlint: ignore[DET001, IPC001] -- test harness\n"
        assert parse_suppressions(source)[1].rule_ids == ("DET001", "IPC001")

    def test_bare_suppression_has_no_justification(self):
        source = "z = g()  # detlint: ignore[DET001]\n"
        assert parse_suppressions(source)[1].justification is None

    def test_grammar_quoted_in_strings_is_not_live(self):
        # The docs quote the suppression syntax inside docstrings and
        # string literals; only real comments may suppress.
        source = (
            '"""Docs: use # detlint: ignore[DET001] -- reason."""\n'
            "MESSAGE = 'write # detlint: ignore[DET003] -- why'\n"
        )
        assert parse_suppressions(source) == {}


class TestSuppressionEnforcement:
    def test_justified_suppression_silences_finding(self, engine):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # detlint: ignore[DET001] -- demo\n"
        )
        assert engine.check_source("src/repro/x.py", source) == []

    def test_bare_suppression_is_sup001(self, engine):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # detlint: ignore[DET001]\n"
        )
        findings = engine.check_source("src/repro/x.py", source)
        assert [finding.rule_id for finding in findings] == ["SUP001"]

    def test_stale_suppression_is_sup002(self, engine):
        source = "value = 1  # detlint: ignore[DET001] -- nothing fires\n"
        findings = engine.check_source("src/repro/x.py", source)
        assert [finding.rule_id for finding in findings] == ["SUP002"]

    def test_suppression_fixture_yields_exactly_the_policing_findings(self, engine):
        path = os.path.join(FIXTURES, "suppressed.py")
        with open(path, "r", encoding="utf-8") as handle:
            findings = engine.check_source(path, handle.read())
        assert sorted(finding.rule_id for finding in findings) == ["SUP001", "SUP002"]

    def test_suppression_only_covers_listed_rules(self, engine):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # detlint: ignore[DET003] -- wrong rule\n"
        )
        findings = engine.check_source("src/repro/x.py", source)
        # DET001 still fires, and the DET003 suppression is stale.
        assert sorted(finding.rule_id for finding in findings) == ["DET001", "SUP002"]


class TestModuleNaming:
    def test_src_rooted_paths_become_repro_modules(self):
        assert (
            module_name_for_path("src/repro/serving/workers.py")
            == "repro.serving.workers"
        )

    def test_tests_paths_get_pseudo_names(self):
        assert (
            module_name_for_path("tests/serving/test_workers.py")
            == "tests.serving.test_workers"
        )


class TestCollection:
    def test_fixture_directory_is_excluded_from_walks(self):
        files = collect_files(["tests/analysis"])
        assert not any("fixtures" in path for path in files)

    def test_explicit_fixture_files_are_always_included(self):
        bad = os.path.join(FIXTURES, "det001_bad.py")
        assert collect_files([bad]) == [os.path.normpath(bad)]

    def test_walk_is_sorted(self):
        files = collect_files(["src/repro/analysis"])
        assert files == sorted(files)


class TestBaseline:
    def _finding(self, snippet: str) -> Finding:
        return Finding(
            rule_id="DET001",
            path="src/repro/x.py",
            line=3,
            column=0,
            message="m",
            snippet=snippet,
        )

    def test_fingerprint_survives_line_drift(self):
        before = self._finding("rng = np.random.default_rng()")
        after = Finding(
            rule_id="DET001",
            path="src/repro/x.py",
            line=30,
            column=0,
            message="m",
            snippet="rng = np.random.default_rng()",
        )
        assert before.fingerprint == after.fingerprint

    def test_round_trip_and_filtering(self, tmp_path):
        known = self._finding("known_line()")
        fresh = self._finding("fresh_line()")
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings([known]).save(str(baseline_path))
        loaded = Baseline.load(str(baseline_path))
        kept, filtered = apply_baseline([known, fresh], loaded)
        assert kept == [fresh]
        assert filtered == 1
