"""Shared helpers for the analysis-engine suite."""

import os

import pytest

from repro.analysis import DEFAULT_RULES, LintEngine

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


@pytest.fixture
def engine() -> LintEngine:
    return LintEngine(DEFAULT_RULES)


@pytest.fixture
def lint_fixture(engine):
    """Lint a fixture file, optionally under a virtual module path.

    Rules scope themselves by dotted module name (NUM001 only watches
    the numeric core, DET003 exempts the timing modules), so fixtures
    for scoped rules are checked as-if they lived at a repro path.
    """

    def run(name: str, virtual_path: str = None):
        path = os.path.join(FIXTURES, name)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return engine.check_source(virtual_path or path, source)

    return run
