"""NUM001 fixture: reductions that narrow mid-accumulation."""

import numpy as np


def narrowed_total(weights):
    return np.sum(weights, dtype=np.float32)


def narrowed_prefix(weights):
    return weights.cumsum(dtype="float32")


def narrowed_dot(phi, theta):
    return np.dot(phi, theta).sum(dtype=np.float16)
