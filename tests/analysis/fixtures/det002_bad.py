"""DET002 fixture: hash-ordered iteration feeding ordered consumers."""


def iterate_set_literal():
    total = 0.0
    for value in {0.1, 0.2, 0.3}:
        total += value  # float accumulation order follows hash order
    return total


def iterate_set_call(items):
    return [value * 2 for value in set(items)]


def listify(items):
    return list(set(items))


def enumerate_shards(devices):
    return {shard: device for shard, device in enumerate(set(devices))}


def keys_view_algebra(left, right):
    return sum(left[key] for key in left.keys() & right.keys())


def tracked_name(items):
    pending = set(items)
    for value in pending:
        yield value
