"""DET001 fixture: every flavour of nondeterministic randomness."""

import random  # stdlib global state

import numpy as np


def unseeded():
    return np.random.default_rng()


def legacy_global_draw(n):
    np.random.seed(0)
    return np.random.rand(n)


def legacy_shuffle(items):
    np.random.shuffle(items)
    return items


def stdlib_draw():
    return random.random()
