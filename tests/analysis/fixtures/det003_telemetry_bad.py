"""DET003 fixture: a tracing clock reading the machine clock directly.

Checked under the virtual path ``src/repro/telemetry/fixture.py`` —
the telemetry package is deliberately *not* on the timing allowlist,
and gets its own diagnostic pointing at ``telemetry.WallClock``.
"""

import time


class RawWallClock:
    domain = "wall"

    def __init__(self):
        self.origin = time.perf_counter()

    def now(self):
        return time.perf_counter() - self.origin


def stamp_span(name):
    return (name, time.monotonic())
