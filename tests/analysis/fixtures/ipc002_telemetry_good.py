"""IPC002 fixture, fixed form: the telemetry wire kind is declared.

Mirrors ``repro.serving.workers``: span/metric buffers travel as one
more tagged tuple kind on the existing result queue, declared in the
module-level whitelist alongside the batch protocol.
"""

import multiprocessing

WIRE_MESSAGE_KINDS = frozenset({"batch", "ok", "stop", "telemetry"})


def ship_telemetry(result_queue: multiprocessing.Queue, worker_id, seq, spans):
    result_queue.put(("telemetry", worker_id, seq, spans))


def ship_answer(result_queue: multiprocessing.Queue, worker_id, batch_id, results):
    result_queue.put(("ok", worker_id, batch_id, results))
