"""DET003 fixture: wall-clock reads outside the timing modules."""

import time as _clock
from datetime import datetime
from time import perf_counter


def stamp_result(value):
    return {"value": value, "at": _clock.time()}


def measure(fn):
    start = perf_counter()
    fn()
    return perf_counter() - start


def label_run():
    return datetime.now().isoformat()


def log_line(message):
    return f"{_clock.strftime('%H:%M:%S')} {message}"
