"""IPC002 fixture: a whitelist exists, but messages break its contract."""

import multiprocessing

WIRE_MESSAGE_KINDS = frozenset({"work", "stop"})


def untagged_put(payload):
    task_queue = multiprocessing.Queue()
    task_queue.put(payload)  # not a tagged tuple literal
    return task_queue


def unknown_kind():
    task_queue = multiprocessing.Queue()
    task_queue.put(("shutdown",))  # "shutdown" is not a declared kind
    return task_queue
