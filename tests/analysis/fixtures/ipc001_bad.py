"""IPC001 fixture: pickle-shaped serialisation in a load path."""

import pickle

import numpy as np


def load_state(path):
    with open(path, "rb") as handle:
        return pickle.load(handle)


def load_arrays(path):
    return np.load(path, allow_pickle=True)
