"""IPC002 fixture: undisciplined multiprocessing wire traffic.

No ``WIRE_MESSAGE_KINDS`` whitelist is declared, untagged objects go on
the wire, and one message uses a tag the (missing) whitelist never
named.
"""

import multiprocessing


def undeclared_put(payload):
    task_queue = multiprocessing.Queue()
    task_queue.put(payload)
    return task_queue
