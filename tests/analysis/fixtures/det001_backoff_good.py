"""DET001 fixture, fixed form: backoff jitter from a caller-owned seeded RNG.

The shipped idiom: :class:`repro.serving.supervisor.BackoffPolicy` takes
the generator as an argument and the :class:`Supervisor` owns one seeded
at construction, so ``(seed, FaultPlan)`` replays the exact respawn
schedule.
"""

import numpy as np


def jittered_delay(
    base_seconds: float, attempt: int, jitter: float, rng: np.random.Generator
) -> float:
    raw = base_seconds * (2.0**attempt)
    return raw * (1.0 + jitter * rng.random())


def supervisor_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
