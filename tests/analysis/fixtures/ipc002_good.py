"""IPC002 fixture, fixed form: declared, tagged wire format."""

import multiprocessing

WIRE_MESSAGE_KINDS = frozenset({"work", "stop"})


def tagged_puts(payload):
    task_queue = multiprocessing.Queue()
    task_queue.put(("work", payload))
    task_queue.put(("stop",))
    return task_queue
