"""IPC001 fixture, fixed form: JSON for objects, default-guarded np.load."""

import json

import numpy as np


def load_state(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def load_arrays(path):
    # allow_pickle defaults to False: pickled members raise, never execute.
    return np.load(path)
