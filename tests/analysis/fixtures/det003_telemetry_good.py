"""DET003 fixture, fixed form: tracing time routed through bench.timing.

The sanctioned shape: ``telemetry.WallClock`` wraps a
``repro.bench.timing.Stopwatch``, so the one raw clock read lives in
the allowlisted timing module and every span start/end flows through
``clock.now()``.
"""

from repro.bench.timing import stopwatch


class StopwatchWallClock:
    domain = "wall"

    def __init__(self, watch=None):
        self._watch = watch if watch is not None else stopwatch()

    def now(self):
        return self._watch.elapsed()


def stamp_span(name, clock):
    return (name, clock.now())
