"""NUM001 fixture, fixed form: accumulate wide, narrow only at rest."""

import numpy as np


def wide_total(weights):
    return np.sum(weights, dtype=np.float64)


def wide_prefix(weights):
    return weights.cumsum(dtype=np.float64)


def narrow_storage_after(phi, theta):
    # Narrowing the *stored result* is fine; the reduction ran in float64.
    return np.dot(phi, theta).sum().astype(np.float32)
