"""DET002 fixture, fixed form: sorted() pins the order before iteration."""


def iterate_sorted():
    total = 0.0
    for value in sorted({0.1, 0.2, 0.3}):
        total += value
    return total


def iterate_sorted_call(items):
    return [value * 2 for value in sorted(set(items))]


def listify(items):
    return sorted(set(items))


def enumerate_shards(devices):
    return {shard: device for shard, device in enumerate(sorted(set(devices)))}


def keys_view_algebra(left, right):
    return sum(left[key] for key in sorted(left.keys() & right.keys()))


def membership_is_fine(items, probe):
    # Membership tests and len() never observe iteration order.
    return probe in set(items) and len(set(items)) > 1


def plain_dict_keys_are_ordered(mapping):
    # A lone dict view iterates in insertion order (guaranteed since 3.7).
    return [mapping[key] for key in mapping.keys()]
