"""Suppression fixture: justified, bare, and stale suppressions."""

import numpy as np


def justified():
    return np.random.default_rng()  # detlint: ignore[DET001] -- fixture demonstrating a justified suppression


def bare():
    return np.random.default_rng()  # detlint: ignore[DET001]


def stale(seed):
    return np.random.default_rng(seed)  # detlint: ignore[DET001] -- nothing fires here
