"""DET003 fixture, fixed form: timing routed through repro.bench.timing."""

from repro.bench.timing import stopwatch, wall_clock


def measure(fn):
    return wall_clock(fn, repeat=1, warmup=0).best


def report_wall_seconds(fn):
    watch = stopwatch()
    fn()
    return watch.elapsed()


def label_run(run_id: int):
    # Results are labelled by their inputs, never by when they ran.
    return f"run-{run_id:06d}"
