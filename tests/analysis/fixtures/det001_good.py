"""DET001 fixture, fixed form: seeded Generators threaded explicitly."""

import numpy as np


def seeded(seed: int):
    return np.random.default_rng(seed)


def keyed(seed: int, request_id: int):
    return np.random.default_rng(np.random.SeedSequence([seed, request_id]))


def draw(rng: np.random.Generator, n: int):
    return rng.random(n)


def shuffled(rng: np.random.Generator, items):
    return items[rng.permutation(len(items))]
