"""DET001 fixture: respawn backoff whose jitter comes from ambient RNG.

The hazard the supervisor must never reintroduce: an unseeded generator
inside the backoff path makes respawn timing — and therefore the whole
supervision event log — unreplayable.
"""

import numpy as np


def jittered_delay(base_seconds: float, attempt: int, jitter: float) -> float:
    rng = np.random.default_rng()  # unseeded: every run respawns differently
    raw = base_seconds * (2.0**attempt)
    return raw * (1.0 + jitter * rng.random())
