"""IPC002 fixture: a telemetry message whose kind is not declared.

The worker ships span buffers over the result queue, but the module's
``WIRE_MESSAGE_KINDS`` whitelist was never extended with the new
``"telemetry"`` tag — the exact drift the rule exists to catch.
"""

import multiprocessing

WIRE_MESSAGE_KINDS = frozenset({"batch", "ok", "stop"})


def ship_telemetry(result_queue: multiprocessing.Queue, worker_id, seq, spans):
    result_queue.put(("telemetry", worker_id, seq, spans))
