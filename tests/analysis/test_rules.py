"""Every rule, against a fixture exhibiting the violation and the fix.

The bad fixture must produce the rule's findings (at the documented
sites); the good fixture — the same behaviour written the sanctioned
way — must be completely clean.  That pairing is the rule's contract:
it proves both that the rule catches the hazard and that the blessed
idiom passes without suppression.
"""

import pytest


def rule_ids(findings):
    return sorted({finding.rule_id for finding in findings})


class TestDET001:
    def test_bad_fixture_fires(self, lint_fixture):
        findings = lint_fixture("det001_bad.py")
        assert rule_ids(findings) == ["DET001"]
        messages = " ".join(finding.message for finding in findings)
        assert "default_rng() without a seed" in messages
        assert "legacy global RandomState" in messages
        assert "stdlib `random`" in messages
        # unseeded call, stdlib import, seed, rand, shuffle
        assert len(findings) == 5

    def test_good_fixture_clean(self, lint_fixture):
        assert lint_fixture("det001_good.py") == []

    def test_seed_sequence_is_not_unseeded(self, engine):
        findings = engine.check_source(
            "src/repro/example.py",
            "import numpy as np\n"
            "rng = np.random.default_rng(np.random.SeedSequence([1, 2]))\n",
        )
        assert findings == []

    def test_unseeded_backoff_jitter_is_rejected(self, lint_fixture):
        """Respawn jitter from ambient RNG would break chaos replay."""
        findings = lint_fixture(
            "det001_backoff_bad.py", "src/repro/serving/supervisor.py"
        )
        assert rule_ids(findings) == ["DET001"]
        assert "default_rng() without a seed" in findings[0].message

    def test_seeded_backoff_jitter_is_clean(self, lint_fixture):
        assert (
            lint_fixture("det001_backoff_good.py", "src/repro/serving/supervisor.py")
            == []
        )


class TestDET002:
    def test_bad_fixture_fires(self, lint_fixture):
        findings = lint_fixture("det002_bad.py")
        assert rule_ids(findings) == ["DET002"]
        # for-loop, comprehension, list(), enumerate(), keys-view algebra,
        # tracked set-typed name
        assert len(findings) == 6

    def test_good_fixture_clean(self, lint_fixture):
        assert lint_fixture("det002_good.py") == []

    def test_sorted_wrapper_is_the_sanctioned_normalisation(self, engine):
        findings = engine.check_source(
            "src/repro/example.py",
            "counts = sorted(set(measured) & set(projected))\n"
            "for count in counts:\n"
            "    print(count)\n",
        )
        assert findings == []


class TestDET003:
    def test_bad_fixture_fires(self, lint_fixture):
        findings = lint_fixture("det003_bad.py")
        assert rule_ids(findings) == ["DET003"]
        # time.time, 2x perf_counter, datetime.now, strftime
        assert len(findings) == 5

    def test_good_fixture_clean(self, lint_fixture):
        assert lint_fixture("det003_good.py") == []

    @pytest.mark.parametrize(
        "virtual_path",
        [
            "src/repro/bench/timing.py",
            "src/repro/serving/workers.py",
            "src/repro/serving/open_loop.py",
        ],
    )
    def test_timing_modules_are_allowlisted(self, lint_fixture, virtual_path):
        assert lint_fixture("det003_bad.py", virtual_path) == []

    def test_telemetry_is_not_allowlisted(self, lint_fixture):
        """repro.telemetry stays off the allowlist and gets its own message."""
        findings = lint_fixture(
            "det003_telemetry_bad.py", "src/repro/telemetry/fixture.py"
        )
        assert rule_ids(findings) == ["DET003"]
        assert len(findings) == 3  # 2x perf_counter, monotonic
        for finding in findings:
            assert "inside repro.telemetry" in finding.message
            assert "telemetry.WallClock" in finding.message

    def test_telemetry_good_fixture_clean(self, lint_fixture):
        assert (
            lint_fixture(
                "det003_telemetry_good.py", "src/repro/telemetry/fixture.py"
            )
            == []
        )

    @pytest.mark.parametrize(
        "virtual_path",
        [
            "src/repro/serving/supervisor.py",
            "src/repro/serving/faults.py",
        ],
    )
    def test_fault_tolerance_modules_stay_clock_free(self, lint_fixture, virtual_path):
        """The supervisor and fault planner are NOT allowlisted: both are
        pure state machines fed an explicit ``now`` by the pool, and a
        wall-clock read sneaking in would silently break chaos replay."""
        findings = lint_fixture("det003_bad.py", virtual_path)
        assert rule_ids(findings) == ["DET003"]


class TestIPC001:
    def test_bad_fixture_fires(self, lint_fixture):
        findings = lint_fixture("ipc001_bad.py")
        assert rule_ids(findings) == ["IPC001"]
        messages = " ".join(finding.message for finding in findings)
        assert "import of pickle" in messages
        assert "allow_pickle=True" in messages
        assert len(findings) == 2

    def test_good_fixture_clean(self, lint_fixture):
        assert lint_fixture("ipc001_good.py") == []

    def test_guarded_reader_is_allowlisted(self, lint_fixture):
        assert lint_fixture("ipc001_bad.py", "src/repro/core/serialization.py") == []

    def test_allow_pickle_false_is_fine(self, engine):
        findings = engine.check_source(
            "src/repro/example.py",
            "import numpy as np\n"
            "arrays = np.load('x.npz', allow_pickle=False)\n",
        )
        assert findings == []


class TestIPC002:
    def test_missing_whitelist_fires(self, lint_fixture):
        findings = lint_fixture("ipc002_bad.py")
        assert rule_ids(findings) == ["IPC002"]
        assert "declares no WIRE_MESSAGE_KINDS" in findings[0].message

    def test_untagged_and_unknown_kind_fire(self, lint_fixture):
        findings = lint_fixture("ipc002_untagged.py")
        assert rule_ids(findings) == ["IPC002"]
        messages = " ".join(finding.message for finding in findings)
        assert "tagged tuple literal" in messages
        assert "'shutdown' is not declared" in messages
        assert len(findings) == 2

    def test_good_fixture_clean(self, lint_fixture):
        assert lint_fixture("ipc002_good.py") == []

    def test_undeclared_telemetry_kind_fires(self, lint_fixture):
        """A telemetry message needs its tag in the whitelist like any other."""
        findings = lint_fixture("ipc002_telemetry_bad.py")
        assert rule_ids(findings) == ["IPC002"]
        assert "'telemetry' is not declared" in findings[0].message

    def test_declared_telemetry_kind_clean(self, lint_fixture):
        assert lint_fixture("ipc002_telemetry_good.py") == []

    def test_shipped_worker_protocol_declares_telemetry(self):
        """The real wire whitelist carries the tracing kind."""
        from repro.serving.workers import WIRE_MESSAGE_KINDS

        assert "telemetry" in WIRE_MESSAGE_KINDS

    def test_shipped_worker_protocol_declares_supervision_kinds(self):
        """Every fault-tolerance message shape is declared up front."""
        from repro.serving.workers import WIRE_MESSAGE_KINDS

        for kind in ("cancel", "cancelled", "heartbeat", "boot_error"):
            assert kind in WIRE_MESSAGE_KINDS

    def test_rule_ignores_modules_without_multiprocessing(self, engine):
        # A domain queue with a .put() API is not IPC.
        findings = engine.check_source(
            "src/repro/example.py",
            "def feed(request_queue, item):\n"
            "    request_queue.put(item)\n",
        )
        assert findings == []


class TestNUM001:
    def test_bad_fixture_fires_in_numeric_core(self, lint_fixture):
        findings = lint_fixture("num001_bad.py", "src/repro/kernels/fixture.py")
        assert rule_ids(findings) == ["NUM001"]
        assert len(findings) == 3

    def test_good_fixture_clean_in_numeric_core(self, lint_fixture):
        assert lint_fixture("num001_good.py", "src/repro/kernels/fixture.py") == []

    def test_rule_scoped_to_numeric_core(self, lint_fixture):
        # The same source outside the numeric core is not NUM001's business.
        assert lint_fixture("num001_bad.py", "src/repro/evaluation/fixture.py") == []
