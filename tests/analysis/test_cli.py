"""The ``python -m repro.analysis`` surface: exit codes, reports, gating.

Includes the two acceptance-critical ends of the gate:

* the **meta-test** — the shipped tree is clean (exit 0 over
  ``src/ tests/ benchmarks/``), which is exactly what the CI
  ``analysis`` job runs; and
* the **negative test** — a seeded fixture violation fails (exit 1),
  proving the CI gate actually bites.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def run_cli(*argv: str) -> "subprocess.CompletedProcess[str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert main([os.path.join(FIXTURES, "det001_good.py")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, capsys):
        assert main([os.path.join(FIXTURES, "det001_bad.py")]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_unknown_rule_id_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "NOPE", FIXTURES])
        assert excinfo.value.code == 2

    def test_missing_path_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["no/such/path.py"])
        assert excinfo.value.code == 2


class TestReports:
    def test_json_report_schema(self, capsys):
        assert main(["--format", "json", os.path.join(FIXTURES, "det001_bad.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["total_findings"] == payload["counts_by_rule"]["DET001"] == 5
        entry = payload["findings"][0]
        assert set(entry) == {
            "rule", "path", "line", "column", "message", "snippet", "fingerprint",
        }

    def test_output_artifact_written_even_when_failing(self, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        code = main(
            ["--output", str(artifact), os.path.join(FIXTURES, "det001_bad.py")]
        )
        capsys.readouterr()
        assert code == 1
        payload = json.loads(artifact.read_text())
        assert payload["total_findings"] == 5

    def test_select_restricts_rules(self, capsys):
        code = main(["--select", "IPC001", os.path.join(FIXTURES, "det001_bad.py")])
        capsys.readouterr()
        assert code == 0  # DET001 findings exist but were not selected

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "IPC001", "IPC002", "NUM001"):
            assert rule_id in out


class TestBaselineFlow:
    def test_write_then_gate(self, tmp_path, capsys):
        bad = os.path.join(FIXTURES, "det001_bad.py")
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(baseline), bad]) == 0
        capsys.readouterr()
        # The recorded debt no longer fails...
        assert main(["--baseline", str(baseline), bad]) == 0
        out = capsys.readouterr().out
        assert "filtered by baseline" in out


class TestShippedTreeGate:
    def test_meta_shipped_tree_is_clean(self):
        """`python -m repro.analysis src/ tests/ benchmarks/` exits 0."""
        result = run_cli("src", "tests", "benchmarks", "examples")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_negative_seeded_violation_fails_the_gate(self):
        """CI fails on a violation: the fixture file trips the same CLI."""
        result = run_cli(os.path.join("tests", "analysis", "fixtures", "det001_bad.py"))
        assert result.returncode == 1, result.stdout + result.stderr
        assert "DET001" in result.stdout
