"""Property-based tests (hypothesis) for the sampling data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sampling import AliasTable, FenwickTree, WaryTree, prefix_sum_search
from repro.saberlda import WarpWaryTree

weight_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=400),
    elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
).filter(lambda w: w.sum() > 1e-6)

uniforms = st.floats(min_value=0.0, max_value=1.0, exclude_max=True)


class TestPrefixSumSearchProperties:
    @given(weights=weight_arrays, u=uniforms)
    @settings(max_examples=60, deadline=None)
    def test_result_is_a_valid_index_with_positive_weight_region(self, weights, u):
        prefix = np.cumsum(weights)
        index = prefix_sum_search(prefix, u * prefix[-1])
        assert 0 <= index < len(weights)
        # The selected position must be reachable: its prefix covers the target.
        assert prefix[index] >= u * prefix[-1] - 1e-9


class TestTreeEquivalenceProperties:
    @given(weights=weight_arrays, u=uniforms)
    @settings(max_examples=60, deadline=None)
    def test_wary_tree_matches_searchsorted(self, weights, u):
        tree = WaryTree.build(weights)
        prefix = np.cumsum(weights)
        expected = min(
            int(np.searchsorted(prefix, u * prefix[-1], side="left")), len(weights) - 1
        )
        assert tree.sample(u) == expected

    @given(weights=weight_arrays, u=uniforms)
    @settings(max_examples=60, deadline=None)
    def test_warp_tree_matches_cpu_tree(self, weights, u):
        cpu_tree = WaryTree.build(weights)
        warp_leaf = WarpWaryTree.build(weights).sample(u)
        cpu_leaf = cpu_tree.sample(u)
        if warp_leaf == cpu_leaf:
            return
        # The warp build scans each 32-group with the Hillis-Steele
        # shuffle tree while the CPU tree uses the sequential cumsum;
        # the two round differently, so a target landing within an ulp
        # of a prefix boundary may legitimately resolve to either side
        # (the same boundary case the Fenwick test below allows).  Any
        # boundary crossed between the two answers must sit at the
        # target up to that rounding slack.
        prefix = np.cumsum(weights)
        target = u * cpu_tree.total()
        crossed = prefix[min(warp_leaf, cpu_leaf) : max(warp_leaf, cpu_leaf)]
        tolerance = 8 * np.spacing(float(prefix[-1]))
        assert np.all(np.abs(crossed - target) <= tolerance)

    @given(weights=weight_arrays, u=uniforms)
    @settings(max_examples=60, deadline=None)
    def test_fenwick_matches_searchsorted(self, weights, u):
        tree = FenwickTree(weights)
        prefix = np.cumsum(weights)
        target = u * prefix[-1]
        expected = min(
            int(np.searchsorted(prefix, target, side="left")), len(weights) - 1
        )
        got = tree.sample(u)
        if got == expected:
            return
        # The Fenwick descent accumulates binary-indexed partial sums,
        # which round differently from the sequential cumsum (and its
        # inequalities are strict): a target within an ulp of a prefix
        # boundary — including one falling exactly on a zero-width
        # region — may resolve to either side.  Every boundary crossed
        # between the two answers must sit at the target up to that
        # rounding slack.
        crossed = prefix[min(got, expected) : max(got, expected)]
        tolerance = 8 * np.spacing(float(prefix[-1]))
        assert np.all(np.abs(crossed - target) <= tolerance)

    @given(weights=weight_arrays)
    @settings(max_examples=40, deadline=None)
    def test_alias_table_preserves_distribution(self, weights):
        table = AliasTable.build(weights)
        np.testing.assert_allclose(
            table.outcome_probabilities(), weights / weights.sum(), atol=1e-9
        )

    @given(weights=weight_arrays)
    @settings(max_examples=40, deadline=None)
    def test_tree_totals_match(self, weights):
        assert np.isclose(WaryTree.build(weights).total(), weights.sum())
        assert np.isclose(WarpWaryTree.build(weights).sum(), weights.sum())
        assert np.isclose(FenwickTree(weights).total(), weights.sum())
