"""Property tests: the warp kernel matches the functional E-step reference.

The fixed-fixture tests in ``tests/saberlda/test_kernels.py`` pin the
warp kernel on hand-picked rows; these properties sweep *random* corpora,
topic counts and chunk layouts and assert the kernel still samples the
exact target of Eq. 1 — the same target the vectorised
``estep.esca_estep`` reference draws from.

The core properties run as deterministic seeded fuzz loops (no external
dependency); when ``hypothesis`` is installed an extra exploration layer
searches the shape space adaptively.
"""

import numpy as np
import pytest

from repro.core import count_by_word_topic
from repro.core.count_matrices import SparseDocTopicMatrix
from repro.core.tokens import TokenList
from repro.saberlda import (
    SaberLDAConfig,
    WarpWaryTree,
    WordSide,
    build_layout,
    esca_estep,
    gather_layout_tokens,
    thread_sample_token,
    warp_sample_token,
)
from repro.saberlda.config import TokenOrder
from repro.sampling import XorShiftRNG, exact_token_distribution, word_prior_mass

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


# --------------------------------------------------------------------------- #
# Random case construction
# --------------------------------------------------------------------------- #
def _random_token_case(seed: int):
    """A random (doc row, word row, alpha) sampling problem."""
    rng = np.random.default_rng(seed)
    num_topics = int(rng.integers(2, 48))
    nnz = int(rng.integers(0, min(num_topics, 40) + 1))
    nz_indices = np.sort(rng.choice(num_topics, size=nnz, replace=False))
    nz_counts = rng.integers(1, 12, size=nnz).astype(np.float64)
    word_row = rng.random(num_topics) + 1e-4
    word_row /= word_row.sum()
    alpha = float(rng.uniform(0.05, 2.0))
    return num_topics, nz_indices, nz_counts, word_row, alpha


def _random_corpus(seed: int):
    """A random small corpus with assigned topics, plus K and a chunk count."""
    rng = np.random.default_rng(seed)
    num_topics = int(rng.integers(3, 12))
    num_documents = int(rng.integers(8, 30))
    vocabulary_size = int(rng.integers(15, 60))
    num_tokens = int(rng.integers(600, 1800))
    doc_ids = np.sort(rng.integers(0, num_documents, size=num_tokens))
    word_ids = rng.integers(0, vocabulary_size, size=num_tokens)
    topics = rng.integers(0, num_topics, size=num_tokens)
    tokens = TokenList(doc_ids.astype(np.int64), word_ids.astype(np.int64), topics.astype(np.int32))
    num_chunks = int(rng.integers(1, 6))
    return tokens, num_documents, vocabulary_size, num_topics, num_chunks


def _total_variation(p: np.ndarray, q: np.ndarray) -> float:
    return 0.5 * float(np.abs(p - q).sum())


def _check_warp_matches_exact(seed: int, num_draws: int = 3000) -> None:
    """Empirical warp-kernel distribution vs the exact Eq. 1 target."""
    num_topics, nz_indices, nz_counts, word_row, alpha = _random_token_case(seed)
    tree = WarpWaryTree.build(word_row)
    prior = word_prior_mass(word_row, alpha)
    rng = XorShiftRNG(seed + 1)
    draws = np.array(
        [
            warp_sample_token(nz_indices, nz_counts, word_row, tree, prior, rng)
            for _ in range(num_draws)
        ]
    )
    empirical = np.bincount(draws, minlength=num_topics) / num_draws
    dense_row = np.zeros(num_topics)
    dense_row[nz_indices] = nz_counts
    expected = exact_token_distribution(dense_row, word_row, alpha)
    assert _total_variation(empirical, expected) < 0.5 * np.sqrt(num_topics / num_draws) + 0.03


# --------------------------------------------------------------------------- #
# Seeded fuzz loops (always run)
# --------------------------------------------------------------------------- #
class TestWarpKernelMatchesExactTarget:
    @pytest.mark.parametrize("seed", [11, 23, 37, 51, 68])
    def test_random_rows_sample_the_exact_distribution(self, seed):
        _check_warp_matches_exact(seed)

    @pytest.mark.parametrize("seed", [5, 17, 29])
    def test_warp_and_thread_kernels_agree_draw_by_draw(self, seed):
        """Same RNG stream -> the two kernels take the same branch and pick.

        The only admissible disagreements are floating-point knife edges
        in the prefix-sum search, which random inputs hit almost never.
        """
        num_topics, nz_indices, nz_counts, word_row, alpha = _random_token_case(seed)
        tree = WarpWaryTree.build(word_row)
        prior = word_prior_mass(word_row, alpha)
        draws = 800
        warp = [
            warp_sample_token(
                nz_indices, nz_counts, word_row, tree, prior, XorShiftRNG(seed * 1000 + i)
            )
            for i in range(draws)
        ]
        thread = [
            thread_sample_token(
                nz_indices, nz_counts, word_row, tree, prior, XorShiftRNG(seed * 1000 + i)
            )
            for i in range(draws)
        ]
        agreement = np.mean(np.array(warp) == np.array(thread))
        assert agreement > 0.995


class TestKernelMatchesEstepOnRandomCorpora:
    """Corpus-level: a warp-kernel E-step and ``esca_estep`` draw from one target."""

    @pytest.mark.parametrize("seed", [3, 41, 97])
    def test_aggregate_topic_counts_match_reference(self, seed):
        tokens, num_documents, vocabulary_size, num_topics, num_chunks = _random_corpus(seed)
        config = SaberLDAConfig.paper_defaults(num_topics, num_chunks=num_chunks)
        layouts = build_layout(tokens, num_documents, config)
        ordered = gather_layout_tokens(layouts)

        doc_topic = SparseDocTopicMatrix.from_tokens(ordered, num_documents, num_topics)
        word_topic = count_by_word_topic(ordered, vocabulary_size, num_topics)
        word_side = WordSide.prepare(word_topic, config.params.alpha, config.params.beta)
        dense_doc = doc_topic.to_dense()

        # The exact aggregate target: sum of every token's Eq. 1 distribution.
        expected = np.zeros(num_topics)
        for doc_id, word_id, _topic in ordered:
            expected += exact_token_distribution(
                dense_doc[doc_id], word_side.probs[word_id], config.params.alpha
            )
        expected /= ordered.num_tokens

        # Warp-kernel E-step over the laid-out corpus.
        trees = {}
        xrng = XorShiftRNG(seed + 7)
        warp_counts = np.zeros(num_topics)
        for doc_id, word_id, _topic in ordered:
            if word_id not in trees:
                trees[word_id] = WarpWaryTree.build(word_side.probs[word_id])
            nz_topics, nz_values = doc_topic.row(doc_id)
            picked = warp_sample_token(
                nz_topics,
                nz_values,
                word_side.probs[word_id],
                trees[word_id],
                float(word_side.prior_mass[word_id]),
                xrng,
            )
            warp_counts[picked] += 1
        warp_dist = warp_counts / ordered.num_tokens

        # Functional reference E-step on the same frozen state.
        reference = esca_estep(
            ordered, doc_topic, word_side, np.random.default_rng(seed + 7)
        )
        reference_dist = (
            np.bincount(reference.new_topics, minlength=num_topics) / ordered.num_tokens
        )

        noise = 0.5 * np.sqrt(2.0 * num_topics / ordered.num_tokens)
        assert _total_variation(warp_dist, expected) < noise + 0.03
        assert _total_variation(reference_dist, expected) < noise + 0.03
        assert _total_variation(warp_dist, reference_dist) < 2 * noise + 0.03

    @pytest.mark.parametrize("seed", [13, 59])
    @pytest.mark.parametrize("order", [TokenOrder.WORD_MAJOR, TokenOrder.DOC_MAJOR])
    def test_layout_does_not_change_the_estep_statistics(self, seed, order):
        """Chunking/ordering permutes tokens; the frozen-state target is invariant."""
        tokens, num_documents, vocabulary_size, num_topics, _ = _random_corpus(seed)
        config = SaberLDAConfig.paper_defaults(num_topics, token_order=order)
        single = build_layout(tokens.copy(), num_documents, config)
        chunked = build_layout(
            tokens.copy(), num_documents, config.with_overrides(num_chunks=4)
        )

        results = []
        for layouts in (single, chunked):
            ordered = gather_layout_tokens(layouts)
            doc_topic = SparseDocTopicMatrix.from_tokens(ordered, num_documents, num_topics)
            word_topic = count_by_word_topic(ordered, vocabulary_size, num_topics)
            word_side = WordSide.prepare(word_topic, config.params.alpha, config.params.beta)
            result = esca_estep(
                ordered, doc_topic, word_side, np.random.default_rng(seed)
            )
            results.append(
                np.bincount(result.new_topics, minlength=num_topics) / ordered.num_tokens
            )
        noise = 0.5 * np.sqrt(2.0 * num_topics / tokens.num_tokens)
        assert _total_variation(results[0], results[1]) < 2 * noise + 0.03


# --------------------------------------------------------------------------- #
# Hypothesis exploration layer (runs when hypothesis is installed)
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestHypothesisExploration:
    if HAVE_HYPOTHESIS:

        @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
        @settings(max_examples=12, deadline=None, derandomize=True)
        def test_warp_kernel_matches_exact_target(self, seed):
            _check_warp_matches_exact(seed, num_draws=2000)

        @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
        @settings(max_examples=8, deadline=None, derandomize=True)
        def test_layout_preserves_token_multiset(self, seed):
            tokens, num_documents, _v, num_topics, num_chunks = _random_corpus(seed)
            config = SaberLDAConfig.paper_defaults(num_topics, num_chunks=num_chunks)
            layouts = build_layout(tokens, num_documents, config)
            ordered = gather_layout_tokens(layouts)
            assert ordered.num_tokens == tokens.num_tokens
            original = sorted(zip(tokens.doc_ids, tokens.word_ids, tokens.topics, strict=True))
            laid_out = sorted(zip(ordered.doc_ids, ordered.word_ids, ordered.topics, strict=True))
            assert original == laid_out
