"""Property-based tests (hypothesis) for the serving front door.

The queue and the cache are the two pieces of serving state every
request crosses; their invariants must hold for *any* traffic pattern,
not just the streams the benchmarks happen to drive.  Random arrival
bursts exercise the queue's conservation and FIFO laws; random query
streams — including empty and single-token documents — exercise the
cache's digest soundness, LRU order and counter conservation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import RequestQueue, ResultCache, document_digest
from repro.serving.queue import ServingRequest

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

#: Burst sizes of an arrival wave and pop sizes of a drain step.
arrival_bursts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # arrivals in this wave
        st.integers(min_value=0, max_value=40),  # pops before the next wave
    ),
    min_size=1,
    max_size=20,
)

queue_depths = st.one_of(st.none(), st.integers(min_value=1, max_value=32))

#: Query documents: empty, single-token and longer word-id sequences.
documents = st.lists(
    st.integers(min_value=0, max_value=50), min_size=0, max_size=12
).map(lambda ids: np.asarray(ids, dtype=np.int64))

query_streams = st.lists(documents, min_size=0, max_size=80)

cache_capacities = st.integers(min_value=0, max_value=8)


def _request(request_id: int) -> ServingRequest:
    return ServingRequest(
        request_id=request_id,
        word_ids=np.asarray([request_id % 7], dtype=np.int32),
        arrival_seconds=float(request_id),
    )


# --------------------------------------------------------------------- #
# RequestQueue
# --------------------------------------------------------------------- #
class TestRequestQueueProperties:
    @given(bursts=arrival_bursts, max_depth=queue_depths)
    @settings(max_examples=80, deadline=None)
    def test_conservation_depth_bound_and_fifo(self, bursts, max_depth):
        """Across any burst pattern: admitted + rejected == arrivals, the
        depth never exceeds the bound, and pops preserve arrival order."""
        queue = RequestQueue(max_depth=max_depth)
        offered = 0
        admitted_ids = []
        popped_ids = []
        for arrivals, pops in bursts:
            for _ in range(arrivals):
                request = _request(offered)
                if queue.offer(request):
                    admitted_ids.append(request.request_id)
                offered += 1
                if max_depth is not None:
                    assert queue.depth <= max_depth
            if pops > 0:
                popped = queue.pop_up_to(pops)
                popped_ids.extend(request.request_id for request in popped)
                assert len(popped) <= pops

        assert queue.admitted + queue.rejected == offered
        assert queue.admitted == len(admitted_ids)
        assert queue.depth == queue.admitted - len(popped_ids)
        # FIFO: what came out is exactly the head of what went in, in order.
        assert popped_ids == admitted_ids[: len(popped_ids)]
        remaining = queue.pop_up_to(max(queue.depth, 1)) if queue.depth else []
        assert popped_ids + [r.request_id for r in remaining] == admitted_ids

    @given(bursts=arrival_bursts)
    @settings(max_examples=40, deadline=None)
    def test_unbounded_queue_never_sheds(self, bursts):
        queue = RequestQueue(max_depth=None)
        offered = 0
        for arrivals, pops in bursts:
            for _ in range(arrivals):
                assert queue.offer(_request(offered))
                offered += 1
            if pops > 0:
                queue.pop_up_to(pops)
        assert queue.rejected == 0
        assert queue.admitted == offered
        assert queue.rejection_rate() == 0.0

    @given(extra=st.integers(min_value=1, max_value=30), depth=st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_full_queue_sheds_exactly_the_overflow(self, extra, depth):
        queue = RequestQueue(max_depth=depth)
        for position in range(depth + extra):
            queue.offer(_request(position))
        assert queue.depth == depth
        assert queue.admitted == depth
        assert queue.rejected == extra
        assert queue.rejection_rate() == extra / (depth + extra)


# --------------------------------------------------------------------- #
# ResultCache / document_digest
# --------------------------------------------------------------------- #
class TestDocumentDigestProperties:
    @given(first=documents, second=documents)
    @settings(max_examples=120, deadline=None)
    def test_digest_equal_iff_byte_identical_sequence(self, first, second):
        same = len(first) == len(second) and bool(np.all(first == second))
        assert (document_digest(first) == document_digest(second)) == same

    @given(doc=documents)
    @settings(max_examples=60, deadline=None)
    def test_digest_is_stable_and_dtype_insensitive(self, doc):
        assert document_digest(doc) == document_digest(doc)
        assert document_digest(doc) == document_digest(doc.astype(np.int32))
        assert document_digest(list(map(int, doc))) == document_digest(doc)

    @given(doc=documents.filter(lambda ids: ids.size >= 2))
    @settings(max_examples=60, deadline=None)
    def test_digest_is_order_sensitive(self, doc):
        reordered = doc[::-1]
        if bool(np.all(reordered == doc)):
            return  # palindromic sequence: same bytes, same digest
        assert document_digest(reordered) != document_digest(doc)


class TestResultCacheProperties:
    def _theta_for(self, digest: str, num_topics: int = 4) -> np.ndarray:
        seed = int(digest[:8], 16)
        return np.random.default_rng(seed).random(num_topics)

    @given(stream=query_streams, capacity=cache_capacities)
    @settings(max_examples=80, deadline=None)
    def test_counters_conserve_and_model_matches_an_oracle(self, stream, capacity):
        """Against a dict-based LRU oracle: hit iff the byte-identical
        document is resident, hits + misses == lookups, size bounded,
        capacity 0 stores nothing."""
        from collections import OrderedDict

        cache = ResultCache(capacity=capacity)
        oracle: "OrderedDict[str, np.ndarray]" = OrderedDict()
        lookups = 0
        for doc in stream:
            digest = document_digest(doc)
            expected = oracle.get(digest)
            got = cache.get(digest)
            lookups += 1
            if expected is None:
                assert got is None
            else:
                assert got is not None and np.array_equal(got, expected)
                oracle.move_to_end(digest)
            if got is None:
                theta = self._theta_for(digest)
                cache.put(digest, theta)
                if capacity > 0:
                    oracle[digest] = theta
                    oracle.move_to_end(digest)
                    while len(oracle) > capacity:
                        oracle.popitem(last=False)
            assert len(cache) == len(oracle)
            assert len(cache) <= capacity
        assert cache.hits + cache.misses == lookups
        if capacity == 0:
            assert len(cache) == 0 and cache.hits == 0

    @given(capacity=st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_lru_eviction_order(self, capacity):
        """Filling past capacity evicts strictly least-recently-used."""
        cache = ResultCache(capacity=capacity)
        digests = [document_digest([position]) for position in range(capacity + 2)]
        theta = np.ones(3)
        for digest in digests[:capacity]:
            cache.put(digest, theta)
        # Touch the first entry: it becomes most-recent and must survive
        # the next eviction; the second-oldest must not.
        assert cache.get(digests[0]) is not None
        cache.put(digests[capacity], theta)
        if capacity > 1:
            assert cache.get(digests[0]) is not None
            assert cache.get(digests[1]) is None
        cache.put(digests[capacity + 1], theta)
        assert len(cache) == capacity
        assert cache.evictions == 2

    @given(doc=documents)
    @settings(max_examples=40, deadline=None)
    def test_cached_result_is_frozen(self, doc):
        cache = ResultCache(capacity=4)
        digest = document_digest(doc)
        cache.put(digest, np.arange(4, dtype=np.float64))
        resident = cache.get(digest)
        assert resident is not None
        try:
            resident[0] = 99.0
            mutated = True
        except ValueError:
            mutated = False
        assert not mutated
