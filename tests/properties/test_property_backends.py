"""Property-based tests (hypothesis): vectorized kernels ≡ reference kernels.

The vectorized backend's whole contract is *bit-identity*: same
uniforms, same draw order, same floating-point reduction shapes as the
reference loops, on any input.  These properties drive both backends
with random corpora, random seeds and both sampling problems — through
the adversarial shapes the chunk-flattening index arithmetic must
survive: empty documents (empty ``A`` rows *and* empty queries),
single-token documents, ``K = 1``, duplicated words, unsorted document
ids and LRU-bank capacity pressure — and assert exact equality of every
sampled topic, every theta byte and every bank counter.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LDAHyperParams, LDAModel, TokenList
from repro.core.count_matrices import SparseDocTopicMatrix, count_by_word_topic
from repro.kernels import (
    KernelBackend,
    sample_from_word_cdf,
    sample_rows_from_cdf,
)
from repro.saberlda.config import PreprocessKind
from repro.saberlda.estep import WordSide, esca_estep
from repro.sampling.wary_tree import WaryTree
from repro.serving.foldin import WordSamplerBank, fold_in_document

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

corpus_shapes = st.tuples(
    st.integers(min_value=1, max_value=20),  # documents
    st.integers(min_value=1, max_value=40),  # vocabulary
    st.integers(min_value=1, max_value=9),   # topics (includes K = 1)
    st.integers(min_value=0, max_value=200), # tokens (includes empty chunks)
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)

#: Query documents: empty, single-token and longer (with repeated words).
queries = st.lists(
    st.integers(min_value=0, max_value=29), min_size=0, max_size=60
).map(lambda ids: np.asarray(ids, dtype=np.int64))


def _random_estep_inputs(shape, seed):
    """A random chunk + frozen matrices, with some documents' rows emptied.

    Dropping a random subset of documents from the counted matrix (but
    not the token stream) exercises the empty-``A``-row branch exactly
    as a fresh chunk meeting an unseen document does.
    """
    num_documents, vocabulary_size, num_topics, num_tokens = shape
    rng = np.random.default_rng(seed)
    doc_ids = np.sort(rng.integers(0, num_documents, num_tokens)).astype(np.int32)
    if seed % 3 == 0:
        doc_ids = rng.permutation(doc_ids).astype(np.int32)
    word_ids = rng.integers(0, vocabulary_size, num_tokens).astype(np.int32)
    topics = rng.integers(0, num_topics, num_tokens).astype(np.int32)
    tokens = TokenList(doc_ids, word_ids, topics)

    counted = rng.random(num_documents) > 0.25
    keep = counted[doc_ids] if num_tokens else np.zeros(0, dtype=bool)
    if keep.any():
        doc_topic = SparseDocTopicMatrix.from_tokens(
            TokenList(doc_ids[keep], word_ids[keep], topics[keep]),
            num_documents,
            num_topics,
        )
    else:
        doc_topic = SparseDocTopicMatrix.empty(num_documents, num_topics)
    word_side = WordSide.prepare(
        count_by_word_topic(tokens, vocabulary_size, num_topics), 0.5, 0.01
    )
    return tokens, doc_topic, word_side


class TestEStepBackendEquivalence:
    @given(shape=corpus_shapes, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_vectorized_estep_is_bit_identical(self, shape, seed):
        tokens, doc_topic, word_side = _random_estep_inputs(shape, seed)
        reference = esca_estep(
            tokens, doc_topic, word_side,
            np.random.default_rng(seed + 1), KernelBackend.REFERENCE,
        )
        vectorized = esca_estep(
            tokens, doc_topic, word_side,
            np.random.default_rng(seed + 1), KernelBackend.VECTORIZED,
        )
        assert np.array_equal(reference.new_topics, vectorized.new_topics)
        assert reference.doc_branch_tokens == vectorized.doc_branch_tokens
        assert reference.prior_branch_tokens == vectorized.prior_branch_tokens

    @given(shape=corpus_shapes, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_backends_leave_the_rng_in_the_same_state(self, shape, seed):
        """Both backends consume exactly the same number of uniforms."""
        tokens, doc_topic, word_side = _random_estep_inputs(shape, seed)
        states = []
        for backend in KernelBackend:
            rng = np.random.default_rng(seed + 2)
            esca_estep(tokens, doc_topic, word_side, rng, backend)
            states.append(rng.random())  # next draw reveals the stream position
        assert states[0] == states[1]


def _fold_in_model(num_topics, vocabulary_size, seed):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 4, size=(vocabulary_size, num_topics))
    return LDAModel(
        word_topic_counts=counts, params=LDAHyperParams.paper_defaults(num_topics)
    )


class TestFoldInBackendEquivalence:
    @given(
        query=queries,
        num_topics=st.sampled_from([1, 2, 7, 33]),
        kind=st.sampled_from(list(PreprocessKind)),
        num_sweeps=st.integers(min_value=1, max_value=6),
        capacity=st.sampled_from([1, 4, 4096]),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_vectorized_fold_in_is_bit_identical(
        self, query, num_topics, kind, num_sweeps, capacity, seed
    ):
        model = _fold_in_model(num_topics, 30, seed)
        phi = model.fold_in_phi()
        prior_mass = model.params.alpha * phi.sum(axis=1)
        results = {}
        banks = {}
        for backend in KernelBackend:
            bank = WordSamplerBank(phi=phi, kind=kind, capacity=capacity)
            results[backend] = fold_in_document(
                query, phi, prior_mass, model.params.alpha, bank,
                np.random.default_rng(seed + 3), num_sweeps=num_sweeps,
                backend=backend,
            )
            banks[backend] = bank
        reference = results[KernelBackend.REFERENCE]
        vectorized = results[KernelBackend.VECTORIZED]
        assert np.array_equal(reference.topics, vectorized.topics)
        assert np.array_equal(reference.doc_topic_counts, vectorized.doc_topic_counts)
        assert reference.theta.tobytes() == vectorized.theta.tobytes()
        # The bank must evolve identically too (same touches, same LRU
        # evictions): its build accounting feeds the batch cost model.
        for counter in ("builds", "hits", "evictions", "construction_steps"):
            assert getattr(banks[KernelBackend.REFERENCE], counter) == getattr(
                banks[KernelBackend.VECTORIZED], counter
            ), counter


class TestSamplerPrimitiveEquivalence:
    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=200
        ),
        seed=seeds,
    )
    @settings(max_examples=60, deadline=None)
    def test_wary_tree_vectorized_batch_matches_scalar_descent(self, weights, seed):
        weights = np.asarray(weights)
        if weights.sum() <= 0:
            weights[0] = 1.0
        tree = WaryTree.build(weights)
        uniforms = np.random.default_rng(seed).random(64)
        assert np.array_equal(
            tree.sample_batch(uniforms), tree.sample_batch_vectorized(uniforms)
        )

    @given(
        vocabulary_size=st.integers(min_value=1, max_value=12),
        num_topics=st.sampled_from([1, 3, 512, 513, 700]),
        num_draws=st.integers(min_value=0, max_value=120),
        seed=seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_word_cdf_sampler_matches_dense_oracle(
        self, vocabulary_size, num_topics, num_draws, seed
    ):
        """Both strategy branches equal the dense row-gather oracle."""
        rng = np.random.default_rng(seed)
        weights = rng.random((vocabulary_size, num_topics))
        weights[rng.random(weights.shape) < 0.3] = 0.0  # flat CDF stretches
        weights[:, -1] += 1e-9  # keep every row's total positive
        cdf = np.cumsum(weights, axis=1)
        word_ids = rng.integers(0, vocabulary_size, num_draws)
        uniforms = rng.random(num_draws)
        assert np.array_equal(
            sample_from_word_cdf(cdf, word_ids, uniforms),
            sample_rows_from_cdf(cdf[word_ids], uniforms)
            if num_draws
            else np.empty(0, dtype=np.int64),
        )
