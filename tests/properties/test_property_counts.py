"""Property-based tests for count matrices, SSC and warp primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import SparseDocTopicMatrix, TokenList, count_by_doc_topic_dense
from repro.corpus.chunking import DocumentChunk
from repro.gpusim import warp_ballot, warp_prefix_sum, warp_vote
from repro.saberlda import (
    TokenOrder,
    radix_sort_shared,
    rebuild_doc_topic_sort,
    rebuild_doc_topic_ssc,
    segmented_count,
)
from repro.saberlda.layout import layout_chunk


token_lists = st.integers(min_value=1, max_value=200).flatmap(
    lambda n: st.tuples(
        arrays(np.int32, n, elements=st.integers(0, 15)),   # doc ids
        arrays(np.int32, n, elements=st.integers(0, 30)),   # word ids
        arrays(np.int32, n, elements=st.integers(0, 7)),    # topics
    )
)


class TestCountMatrixProperties:
    @given(data=token_lists)
    @settings(max_examples=50, deadline=None)
    def test_sparse_matches_dense_counts(self, data):
        doc_ids, word_ids, topics = data
        tokens = TokenList(doc_ids, word_ids, topics)
        num_docs = tokens.num_documents
        sparse = SparseDocTopicMatrix.from_tokens(tokens, num_docs, 8)
        dense = count_by_doc_topic_dense(tokens, num_docs, 8)
        np.testing.assert_array_equal(sparse.to_dense(), dense)

    @given(data=token_lists)
    @settings(max_examples=50, deadline=None)
    def test_total_count_equals_tokens(self, data):
        doc_ids, word_ids, topics = data
        tokens = TokenList(doc_ids, word_ids, topics)
        sparse = SparseDocTopicMatrix.from_tokens(tokens, tokens.num_documents, 8)
        assert sparse.total_count() == tokens.num_tokens


class TestSscProperties:
    @given(values=arrays(np.int64, st.integers(1, 300), elements=st.integers(0, 1000)))
    @settings(max_examples=50, deadline=None)
    def test_radix_sort_matches_numpy(self, values):
        np.testing.assert_array_equal(radix_sort_shared(values), np.sort(values))

    @given(values=arrays(np.int64, st.integers(1, 300), elements=st.integers(0, 50)))
    @settings(max_examples=50, deadline=None)
    def test_segmented_count_matches_unique(self, values):
        keys, counts = segmented_count(values)
        expected_keys, expected_counts = np.unique(values, return_counts=True)
        np.testing.assert_array_equal(keys, expected_keys)
        np.testing.assert_array_equal(counts, expected_counts)
        assert counts.sum() == len(values)

    @given(data=token_lists)
    @settings(max_examples=30, deadline=None)
    def test_ssc_rebuild_equals_sort_rebuild(self, data):
        doc_ids, word_ids, topics = data
        tokens = TokenList(doc_ids, word_ids, topics)
        num_docs = tokens.num_documents
        chunk = DocumentChunk(chunk_id=0, doc_start=0, doc_stop=num_docs, tokens=tokens)
        layout = layout_chunk(chunk, TokenOrder.WORD_MAJOR)
        ssc = rebuild_doc_topic_ssc(layout, 8)
        sort = rebuild_doc_topic_sort(layout, 8)
        np.testing.assert_array_equal(ssc.matrix.to_dense(), sort.matrix.to_dense())


class TestWarpPrimitiveProperties:
    @given(values=arrays(np.float64, 32, elements=st.floats(0, 1000, allow_nan=False)))
    @settings(max_examples=60, deadline=None)
    def test_prefix_sum_matches_cumsum(self, values):
        np.testing.assert_allclose(warp_prefix_sum(values), np.cumsum(values), rtol=1e-9)

    @given(predicate=arrays(np.bool_, 32, elements=st.booleans()))
    @settings(max_examples=60, deadline=None)
    def test_vote_finds_first_true_lane(self, predicate):
        expected = int(np.argmax(predicate)) if predicate.any() else -1
        assert warp_vote(predicate) == expected

    @given(predicate=arrays(np.bool_, 32, elements=st.booleans()))
    @settings(max_examples=60, deadline=None)
    def test_ballot_bit_count_matches_true_lanes(self, predicate):
        assert bin(warp_ballot(predicate)).count("1") == int(predicate.sum())
