"""Property-based equivalence of the parallelism modes.

The single load-bearing invariant of ``repro.distributed``: whatever the
corpus shape, topic count, device count or parallelism mode, the trained
word-topic matrix is *bit-identical* to the single-device trainer at the
same seed — the modes may only move cost, never mathematics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import word_topic_digest
from repro.corpus import generate_lda_corpus
from repro.distributed import train_distributed
from repro.saberlda import SaberLDAConfig, train_saberlda


corpus_shapes = st.tuples(
    st.integers(min_value=12, max_value=60),   # documents
    st.integers(min_value=30, max_value=120),  # vocabulary
    st.integers(min_value=4, max_value=16),    # topics
    st.integers(min_value=5, max_value=20),    # mean document length
    st.integers(min_value=0, max_value=10_000),  # corpus seed
)


class TestParallelismEquivalence:
    @given(
        shape=corpus_shapes,
        num_devices=st.integers(min_value=2, max_value=4),
        parallelism=st.sampled_from(["data", "topic", "hybrid"]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_word_topic_digest_matches_single_device(
        self, shape, num_devices, parallelism, seed
    ):
        num_documents, vocabulary_size, num_topics, mean_length, corpus_seed = shape
        corpus = generate_lda_corpus(
            num_documents=num_documents,
            vocabulary_size=vocabulary_size,
            num_topics=num_topics,
            mean_document_length=mean_length,
            seed=corpus_seed,
        )
        # The chunk count is a multiple of every candidate pool size so the
        # data/hybrid modes reuse the identical chunk layout (the trainer
        # would otherwise raise it to 2 * num_devices and still match, but
        # then the single-device reference must be re-run on that layout).
        config = SaberLDAConfig.paper_defaults(
            num_topics, num_iterations=2, num_chunks=4 * num_devices, seed=seed,
            evaluate_every=5,
        )
        single = train_saberlda(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
        )
        distributed = train_distributed(
            corpus.unassigned_copy(),
            corpus.num_documents,
            corpus.vocabulary_size,
            config,
            num_devices=num_devices,
            parallelism=parallelism,
        )
        assert word_topic_digest(
            distributed.model.word_topic_counts
        ) == word_topic_digest(single.model.word_topic_counts)
