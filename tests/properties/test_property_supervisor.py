"""Property-based tests (hypothesis) for the supervision control plane.

The supervisor is deliberately pure — every observation carries an
explicit ``now`` and every random choice comes from a construction
seed — which makes it a perfect hypothesis target: drive it with
arbitrary failure/recovery traces and check the laws the pool's fault
tolerance rests on.

* backoff delays are non-decreasing in the attempt number up to the cap,
  for any policy and any jitter draw;
* the circuit breaker opens **iff** ``failure_threshold`` failures land
  inside one sliding window;
* an arbitrary quarantine/respawn/ready history never breaks lane-state
  sanity (status is always a known state, incarnations never decrease,
  respawn counts match started respawns);
* replaying the same ``(seed, trace)`` yields the identical event log —
  the replayable-chaos contract at the unit level.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import BackoffPolicy, CircuitBreaker, DegradationPolicy, Supervisor
from repro.serving.supervisor import (
    BREAKER_OPEN,
    LANE_DEAD,
    LANE_QUARANTINED,
    LANE_RESPAWNING,
    LANE_UP,
)

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

backoff_policies = st.builds(
    BackoffPolicy,
    base_seconds=st.floats(min_value=1e-3, max_value=1.0),
    factor=st.floats(min_value=1.0, max_value=4.0),
    cap_seconds=st.floats(min_value=1.0, max_value=30.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
)

#: Strictly increasing failure timestamps.
failure_times = st.lists(
    st.floats(min_value=1e-3, max_value=5.0), min_size=1, max_size=30
).map(lambda gaps: list(np.cumsum(gaps)))

#: A failure/recovery trace against one supervised lane: each step is a
#: time gap plus what the pool observed ("fail" or "recover").
lane_traces = st.lists(
    st.tuples(
        st.floats(min_value=1e-3, max_value=3.0),
        st.sampled_from(["fail", "recover"]),
    ),
    min_size=1,
    max_size=40,
)


# --------------------------------------------------------------------- #
# Backoff
# --------------------------------------------------------------------- #


class TestBackoffLaws:
    @given(policy=backoff_policies, attempts=st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_raw_delay_non_decreasing_and_capped(self, policy, attempts):
        delays = [policy.raw_delay(n) for n in range(attempts)]
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        assert all(0.0 < d <= policy.cap_seconds for d in delays)

    @given(
        policy=backoff_policies,
        attempt=st.integers(min_value=0, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_jitter_bounded_and_replayable(self, policy, attempt, seed):
        value = policy.delay(attempt, np.random.default_rng(seed))
        raw = policy.raw_delay(attempt)
        assert raw <= value <= raw * (1.0 + policy.jitter) + 1e-12
        assert value == policy.delay(attempt, np.random.default_rng(seed))


# --------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------- #


class TestBreakerLaw:
    @given(
        times=failure_times,
        threshold=st.integers(min_value=1, max_value=6),
        window=st.floats(min_value=0.5, max_value=20.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_opens_iff_threshold_failures_within_one_window(
        self, times, threshold, window
    ):
        breaker = CircuitBreaker(failure_threshold=threshold, window_seconds=window)
        opened_at = None
        for now in times:
            if breaker.record_failure(now) and opened_at is None:
                opened_at = now
        # Reference model: earliest time where >= threshold failures fit
        # in one closing window.
        expected = None
        for index, now in enumerate(times):
            recent = [t for t in times[: index + 1] if now - t <= window]
            if len(recent) >= threshold:
                expected = now
                break
        if expected is None:
            assert opened_at is None
            assert breaker.state != BREAKER_OPEN
        else:
            assert opened_at == expected


# --------------------------------------------------------------------- #
# Supervisor traces
# --------------------------------------------------------------------- #


def _drive(seed, trace, policy):
    """Replay a trace against a fresh supervisor; returns it plus tallies."""
    supervisor = Supervisor(num_lanes=1, policy=policy, seed=seed)
    now = 0.0
    started = 0
    for gap, action in trace:
        now += gap
        state = supervisor.lanes[0]
        if action == "fail":
            if state.status in (LANE_UP, LANE_RESPAWNING):
                supervisor.record_failure(0, now, "crash")
        else:
            for lane in supervisor.due_respawns(now):
                incarnation = supervisor.record_respawn_started(lane, now)
                started += 1
                supervisor.record_ready(lane, incarnation, now)
                supervisor.record_batch_success(lane, now)
    return supervisor, started


class TestSupervisorTraceLaws:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        trace=lane_traces,
    )
    @settings(max_examples=150, deadline=None)
    def test_state_sanity_under_arbitrary_traces(self, seed, trace):
        policy = DegradationPolicy(
            respawn=True,
            max_respawns_per_lane=3,
            backoff=BackoffPolicy(base_seconds=1e-3, cap_seconds=0.01),
        )
        supervisor, started = _drive(seed, trace, policy)
        state = supervisor.lanes[0]
        assert state.status in (LANE_UP, LANE_RESPAWNING, LANE_QUARANTINED, LANE_DEAD)
        # Conservation of incarnations: exactly one per started respawn.
        assert state.incarnation == started == supervisor.respawns
        # A lane that came back up holds no stale respawn schedule.
        if state.status == LANE_UP:
            assert state.next_respawn_at is None
        # MTTR aggregates only ever come from completed recoveries.
        assert len(supervisor._recovery_samples) <= supervisor.respawns

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        trace=lane_traces,
    )
    @settings(max_examples=100, deadline=None)
    def test_replay_yields_identical_event_log(self, seed, trace):
        policy = DegradationPolicy(respawn=True, max_respawns_per_lane=4)
        first, _ = _drive(seed, trace, policy)
        second, _ = _drive(seed, trace, policy)
        assert first.event_signature() == second.event_signature()
        # And the derived report fields agree too.
        assert first.respawns == second.respawns
        assert first.quarantined == second.quarantined
