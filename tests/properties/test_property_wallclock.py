"""Property-based tests: open-loop wall-clock runs conserve requests.

The measured plane's core law is accounting, not timing: for any
arrival stream and any fault the pool can hit — a worker killed
mid-run, a wedged batch blowing its IPC deadline, the in-process
fallback, or a refusal to fall back at all — every admitted request is
answered or failed exactly once and nothing stays pending.  Hypothesis
drives random tiny streams through each fault path and checks the
partition on both surfaces (pool stats and report outcomes).
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LDAHyperParams, save_model_mmap
from repro.core.model import LDAModel
from repro.serving import (
    BatchScheduler,
    RequestQueue,
    ResultCache,
    TopicServer,
    WorkerPool,
    make_requests,
)

NUM_TOPICS = 5
VOCABULARY = 60
SEED = 29

#: Fault paths exercised, keyed by how the pool is built / perturbed.
FAULTS = ("none", "degraded", "worker_kill", "timeout_fallback", "timeout_failed")


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    rng = np.random.default_rng(SEED)
    counts = rng.integers(0, 25, size=(VOCABULARY, NUM_TOPICS)).astype(np.int64)
    model = LDAModel(
        word_topic_counts=counts,
        params=LDAHyperParams(num_topics=NUM_TOPICS, alpha=0.1, beta=0.01),
    )
    directory = str(tmp_path_factory.mktemp("ckpt") / "model")
    return save_model_mmap(model, directory)


documents = st.lists(
    st.lists(st.integers(min_value=0, max_value=VOCABULARY - 1), min_size=1, max_size=8),
    min_size=1,
    max_size=6,
)


def _pool(checkpoint, fault: str) -> WorkerPool:
    if fault == "degraded":
        return WorkerPool(checkpoint, num_workers=0, seed=SEED, num_sweeps=2)
    if fault == "timeout_fallback":
        # Every batch wedges past the deadline; no retry budget and no
        # survivor, so the pool must answer in-process.
        return WorkerPool(
            checkpoint,
            num_workers=1,
            seed=SEED,
            num_sweeps=2,
            batch_timeout_seconds=0.2,
            max_retries=0,
            default_stall_seconds=1.0,
        )
    if fault == "timeout_failed":
        # Same wedge, but the fallback is refused: batches must FAIL and
        # still be accounted for.
        return WorkerPool(
            checkpoint,
            num_workers=1,
            seed=SEED,
            num_sweeps=2,
            batch_timeout_seconds=0.2,
            max_retries=0,
            inprocess_fallback=False,
            default_stall_seconds=1.0,
        )
    return WorkerPool(checkpoint, num_workers=2, seed=SEED, num_sweeps=2)


class TestOpenLoopConservation:
    @given(docs=documents, fault=st.sampled_from(FAULTS))
    @settings(max_examples=10, deadline=None)
    def test_admitted_is_answered_plus_failed_plus_pending(
        self, checkpoint, docs, fault
    ):
        streams = [np.asarray(ids, dtype=np.int32) for ids in docs]
        requests = make_requests(streams, [0.002 * i for i in range(len(streams))])
        with _pool(checkpoint, fault) as pool:
            if fault == "worker_kill":
                pool._processes[0].kill()
                time.sleep(0.05)
            server = TopicServer(
                pool,
                scheduler=BatchScheduler(max_batch_docs=8, max_wait_seconds=0.0),
                queue=RequestQueue(max_depth=None),
                cache=ResultCache(capacity=0),
            )
            report = server.serve(requests)
            stats = pool.stats()

        # Pool surface: nothing lost, nothing left in flight.
        assert stats["admitted"] == (
            stats["answered"] + stats["failed"] + stats["pending"]
        )
        assert stats["pending"] == 0
        # Report surface: every arrival has exactly one outcome.
        assert len(report.outcomes) == len(requests)
        assert report.answered + report.rejected == len(requests)
        if fault == "timeout_failed":
            # The first wedged batch fails (no retry budget, fallback
            # refused).  Once its worker is killed the pool is degraded,
            # and degraded batches always answer in-process — so later
            # arrivals may still be answered.  Either way, every request
            # lands in exactly one bucket on both surfaces.
            statuses = {o.status for o in report.outcomes}
            assert "failed" in statuses
            assert statuses <= {"failed", "answered"}
            failed = sum(1 for o in report.outcomes if o.status == "failed")
            assert stats["failed"] == failed
            assert stats["answered"] == len(requests) - failed
        else:
            assert all(o.status == "answered" for o in report.outcomes)
            assert stats["answered"] == len(requests)
            for outcome in report.outcomes:
                assert outcome.latency_seconds >= 0.0
                assert outcome.theta is not None
        if fault in ("degraded", "timeout_fallback"):
            assert all(o.worker_id == -1 for o in report.outcomes)
