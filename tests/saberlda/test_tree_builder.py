"""Tests for the warp-built W-ary tree (Figs. 6-7)."""

import numpy as np
import pytest

from repro.sampling import WaryTree
from repro.saberlda import WarpWaryTree


class TestConstruction:
    def test_total_matches_weight_sum(self, rng):
        weights = rng.random(1000)
        tree = WarpWaryTree.build(weights)
        assert tree.sum() == pytest.approx(weights.sum())

    def test_level4_is_prefix_sum(self, rng):
        weights = rng.random(100)
        tree = WarpWaryTree.build(weights)
        np.testing.assert_allclose(tree.level4[:100], np.cumsum(weights))

    def test_level3_holds_group_totals(self, rng):
        weights = rng.random(96)
        tree = WarpWaryTree.build(weights)
        np.testing.assert_allclose(tree.level3[:3], np.cumsum(weights)[31::32])

    def test_level2_has_warp_width_entries(self, rng):
        tree = WarpWaryTree.build(rng.random(2000))
        assert len(tree.level2) == 32

    def test_leaf_probabilities_match(self, rng):
        weights = rng.random(500) + 1e-6
        tree = WarpWaryTree.build(weights)
        np.testing.assert_allclose(tree.leaf_probabilities(), weights / weights.sum())

    def test_construction_warp_steps_scale_with_k(self):
        small = WarpWaryTree.build(np.ones(320))
        large = WarpWaryTree.build(np.ones(3200))
        assert large.construction_warp_steps > small.construction_warp_steps
        # Build cost is ~K/32 warp steps, far below K sequential steps.
        assert large.construction_warp_steps < 3200 / 16

    def test_supports_up_to_w_cubed_topics(self):
        WarpWaryTree.build(np.ones(32_768))
        with pytest.raises(ValueError):
            WarpWaryTree.build(np.ones(32_769))

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            WarpWaryTree.build(np.array([]))
        with pytest.raises(ValueError):
            WarpWaryTree.build(np.array([1.0, -1.0]))

    def test_shared_memory_footprint(self):
        tree = WarpWaryTree.build(np.ones(1024))
        assert tree.shared_memory_bytes() == (len(tree.level3) + len(tree.level4)) * 4


class TestSampling:
    def test_matches_cpu_reference_tree(self, rng):
        """The warp-built tree and the CPU reference must agree on every query."""
        weights = rng.random(700) + 1e-9
        warp_tree = WarpWaryTree.build(weights)
        prefix = np.cumsum(weights)
        for u in rng.random(300):
            expected = int(np.searchsorted(prefix, u * prefix[-1], side="left"))
            assert warp_tree.sample(float(u)) == min(expected, 699)

    def test_agrees_with_wary_tree_reference(self, rng):
        weights = rng.random(257)
        warp_tree = WarpWaryTree.build(weights)
        reference = WaryTree.build(weights)
        for u in rng.random(100):
            assert warp_tree.sample(float(u)) == reference.sample(float(u))

    def test_empirical_distribution(self, rng):
        weights = np.array([1.0, 3.0, 0.0, 2.0, 4.0])
        tree = WarpWaryTree.build(weights)
        draws = np.array([tree.sample(float(u)) for u in rng.random(20_000)])
        empirical = np.bincount(draws, minlength=5) / len(draws)
        np.testing.assert_allclose(empirical, weights / weights.sum(), atol=0.02)

    def test_samples_in_range_for_large_k(self, rng):
        weights = rng.random(10_000)
        tree = WarpWaryTree.build(weights)
        for u in rng.random(50):
            assert 0 <= tree.sample(float(u)) < 10_000

    def test_single_outcome(self):
        tree = WarpWaryTree.build(np.array([5.0]))
        assert tree.sample(0.99) == 0
