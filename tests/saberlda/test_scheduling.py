"""Tests for the block-level load-balancing scheduler (Sec. 3.4)."""

import numpy as np
import pytest

from repro.corpus import generate_zipf_corpus, partition_by_document
from repro.gpusim import GTX_1080
from repro.saberlda import TokenOrder
from repro.saberlda.layout import layout_chunk
from repro.saberlda.scheduling import (
    ScheduleOutcome,
    frequency_ordering_benefit,
    head_token_share,
    schedule_word_runs,
    simulate_dynamic_schedule,
)


@pytest.fixture(scope="module")
def zipf_layout():
    corpus = generate_zipf_corpus(
        num_documents=400, vocabulary_size=3_000, mean_document_length=120, seed=17
    )
    chunk = partition_by_document(corpus.tokens, corpus.num_documents, 1)[0]
    return layout_chunk(chunk, TokenOrder.WORD_MAJOR)


class TestDynamicSchedule:
    def test_single_processor_makespan_is_total_work(self):
        outcome = simulate_dynamic_schedule([5, 3, 2], num_processors=1)
        assert outcome.makespan_units == 10
        assert outcome.utilization == pytest.approx(1.0)

    def test_perfectly_divisible_work_is_balanced(self):
        outcome = simulate_dynamic_schedule([4] * 8, num_processors=4)
        assert outcome.makespan_units == 8
        assert outcome.imbalance == pytest.approx(0.0)

    def test_one_giant_item_dominates(self):
        outcome = simulate_dynamic_schedule([100, 1, 1, 1], num_processors=4)
        assert outcome.makespan_units == 100
        assert outcome.utilization < 0.5

    def test_empty_work(self):
        outcome = simulate_dynamic_schedule([], num_processors=4)
        assert outcome.makespan_units == 0.0
        assert outcome.utilization == 1.0

    def test_zero_sized_items_ignored(self):
        outcome = simulate_dynamic_schedule([0, 0, 3], num_processors=2)
        assert outcome.busy_units == 3

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            simulate_dynamic_schedule([1], num_processors=0)

    def test_more_processors_never_slower(self):
        sizes = list(np.random.default_rng(0).integers(1, 50, size=200))
        few = simulate_dynamic_schedule(sizes, num_processors=8)
        many = simulate_dynamic_schedule(sizes, num_processors=32)
        assert many.makespan_units <= few.makespan_units


class TestWordRunScheduling:
    def test_zipf_head_carries_large_token_share(self, zipf_layout):
        """The paper's premise: a few high-frequency words own a big chunk of the tokens."""
        assert head_token_share(zipf_layout, head_words=30) > 0.2

    def test_frequency_first_schedule_not_worse(self, zipf_layout):
        """Scheduling the most frequent words first never increases the makespan."""
        benefit = frequency_ordering_benefit(zipf_layout, GTX_1080, blocks_per_sm=4)
        assert benefit >= 1.0

    def test_utilization_reasonable_with_dynamic_scheduling(self, zipf_layout):
        outcome = schedule_word_runs(zipf_layout, GTX_1080, blocks_per_sm=2)
        assert isinstance(outcome, ScheduleOutcome)
        assert outcome.utilization > 0.5

    def test_sorted_and_naive_process_same_work(self, zipf_layout):
        sorted_outcome = schedule_word_runs(zipf_layout, GTX_1080, sort_by_frequency=True)
        naive_outcome = schedule_word_runs(zipf_layout, GTX_1080, sort_by_frequency=False)
        assert sorted_outcome.busy_units == naive_outcome.busy_units
