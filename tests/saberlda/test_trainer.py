"""Tests for the SaberLDA trainer and the ablation runner."""

import numpy as np
import pytest

from repro.corpus import NYTIMES
from repro.saberlda import SaberLDAConfig, run_ablation, train_saberlda


@pytest.fixture(scope="module")
def small_corpus_module(make_corpus):
    return make_corpus(60, 150, 6, 40, 7)


@pytest.fixture(scope="module")
def trained(small_corpus_module):
    corpus = small_corpus_module
    config = SaberLDAConfig.paper_defaults(
        8, num_iterations=6, num_chunks=2, seed=1, evaluate_every=1
    )
    result = train_saberlda(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
    )
    return corpus, config, result


class TestTrainingResult:
    def test_history_length(self, trained):
        _corpus, config, result = trained
        assert len(result.history) == config.num_iterations

    def test_likelihood_improves(self, trained):
        _corpus, _config, result = trained
        first = result.history[0].log_likelihood_per_token
        last = result.history[-1].log_likelihood_per_token
        assert last > first

    def test_simulated_time_is_cumulative(self, trained):
        _corpus, _config, result = trained
        times = [record.cumulative_simulated_seconds for record in result.history]
        assert all(later > earlier for earlier, later in zip(times, times[1:], strict=False))

    def test_phase_breakdown_sums_to_total(self, trained):
        _corpus, _config, result = trained
        assert sum(result.phase_breakdown().values()) == pytest.approx(
            result.simulated_seconds, rel=1e-6
        )

    def test_doc_topic_counts_match_corpus_size(self, trained):
        corpus, _config, result = trained
        assert result.doc_topic.total_count() == corpus.num_tokens

    def test_model_metadata(self, trained):
        _corpus, config, result = trained
        assert result.model.metadata["system"] == "SaberLDA"
        assert result.model.metadata["num_chunks"] == config.num_chunks

    def test_throughput_positive(self, trained):
        _corpus, _config, result = trained
        assert result.throughput_tokens_per_second() > 0

    def test_convergence_curve_points(self, trained):
        _corpus, config, result = trained
        curve = result.convergence_curve()
        assert len(curve) == config.num_iterations

    def test_deterministic_given_seed(self, small_corpus_module):
        corpus = small_corpus_module
        config = SaberLDAConfig.paper_defaults(6, num_iterations=2, seed=42)
        first = train_saberlda(
            corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
        )
        second = train_saberlda(
            corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size, config
        )
        np.testing.assert_array_equal(
            first.model.word_topic_counts, second.model.word_topic_counts
        )

    def test_mean_doc_nnz_stays_below_topics(self, trained):
        _corpus, config, result = trained
        for record in result.history:
            assert record.mean_doc_nnz <= config.params.num_topics


class TestTopicRecovery:
    def test_recovers_planted_structure(self, medium_corpus):
        """Training on an LDA-generated corpus should beat the random-assignment likelihood."""
        from repro.core import LDAHyperParams

        config = SaberLDAConfig(
            params=LDAHyperParams(num_topics=10, alpha=0.1, beta=0.01),
            num_iterations=12,
            num_chunks=2,
            seed=0,
        )
        result = train_saberlda(
            medium_corpus.unassigned_copy(),
            medium_corpus.num_documents,
            medium_corpus.vocabulary_size,
            config,
        )
        improvement = (
            result.history[-1].log_likelihood_per_token
            - result.history[0].log_likelihood_per_token
        )
        assert improvement > 0.1


class TestAblationRunner:
    def test_replica_scale_ablation_runs(self, small_corpus_module):
        report = run_ablation(
            small_corpus_module, num_topics=8, measured_iterations=2, reported_iterations=10
        )
        assert [entry.name for entry in report.entries] == ["G0", "G1", "G2", "G3", "G4"]
        assert report.speedup("G0", "G4") > 0

    def test_full_scale_ablation_reproduces_fig9_shape(self, small_corpus_module):
        report = run_ablation(
            small_corpus_module,
            num_topics=1000,
            measured_iterations=2,
            reported_iterations=100,
            descriptor=NYTIMES,
        )
        g0, g1, g2, g3, g4 = (report.entry(name) for name in ["G0", "G1", "G2", "G3", "G4"])
        # PDOW reduces sampling time; the tree removes most of the pre-processing;
        # SSC removes most of the A update; async hides most of the transfer.
        assert g1.phase_seconds["sampling"] < g0.phase_seconds["sampling"]
        assert g2.phase_seconds["preprocessing"] < 0.2 * g1.phase_seconds["preprocessing"]
        assert g3.phase_seconds["a_update"] < 0.5 * g2.phase_seconds["a_update"]
        assert g4.phase_seconds["transfer"] < g3.phase_seconds["transfer"]
        assert report.speedup("G0", "G4") > 1.5

    def test_unknown_entry_raises(self, small_corpus_module):
        report = run_ablation(
            small_corpus_module, num_topics=8, measured_iterations=1, reported_iterations=1
        )
        with pytest.raises(KeyError):
            report.entry("G9")
