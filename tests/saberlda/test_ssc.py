"""Tests for shuffle-and-segmented-count (SSC) and the count-rebuild paths."""

import numpy as np
import pytest

from repro.core import SparseDocTopicMatrix
from repro.corpus import partition_by_document
from repro.saberlda import (
    SaberLDAConfig,
    TokenOrder,
    build_layout,
    merge_chunk_rows,
    radix_sort_shared,
    rebuild_doc_topic_sort,
    rebuild_doc_topic_ssc,
    segmented_count,
    shuffle_to_document_order,
)
from repro.saberlda.layout import layout_chunk


class TestRadixSort:
    def test_sorts_like_numpy(self, rng):
        values = rng.integers(0, 1000, size=300)
        np.testing.assert_array_equal(radix_sort_shared(values), np.sort(values))

    def test_empty_input(self):
        assert len(radix_sort_shared(np.array([], dtype=np.int64))) == 0

    def test_single_value(self):
        np.testing.assert_array_equal(radix_sort_shared(np.array([7])), [7])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            radix_sort_shared(np.array([1, -2]))

    def test_large_values_need_multiple_passes(self, rng):
        values = rng.integers(0, 2**20, size=200)
        np.testing.assert_array_equal(radix_sort_shared(values, radix_bits=8), np.sort(values))


class TestSegmentedCount:
    def test_paper_figure8_example(self):
        """Fig. 8: input [1,8,5,1,3,5,5,3] -> keys [1,3,5,8], counts [2,2,3,1]."""
        keys, counts = segmented_count(np.array([1, 8, 5, 1, 3, 5, 5, 3]))
        np.testing.assert_array_equal(keys, [1, 3, 5, 8])
        np.testing.assert_array_equal(counts, [2, 2, 3, 1])

    def test_matches_numpy_unique(self, rng):
        topics = rng.integers(0, 50, size=400)
        keys, counts = segmented_count(topics)
        expected_keys, expected_counts = np.unique(topics, return_counts=True)
        np.testing.assert_array_equal(keys, expected_keys)
        np.testing.assert_array_equal(counts, expected_counts)

    def test_empty_segment(self):
        keys, counts = segmented_count(np.array([], dtype=np.int64))
        assert len(keys) == 0
        assert len(counts) == 0

    def test_single_topic_segment(self):
        keys, counts = segmented_count(np.array([4, 4, 4]))
        np.testing.assert_array_equal(keys, [4])
        np.testing.assert_array_equal(counts, [3])


class TestShuffle:
    def test_shuffle_groups_tokens_by_document(self, small_corpus):
        chunks = partition_by_document(small_corpus.tokens, small_corpus.num_documents, 2)
        layout = layout_chunk(chunks[0], TokenOrder.WORD_MAJOR)
        shuffled = shuffle_to_document_order(layout)
        assert (np.diff(shuffled.doc_ids) >= 0).all()
        assert shuffled.num_tokens == layout.num_tokens

    def test_shuffle_preserves_token_multiset(self, small_corpus):
        chunks = partition_by_document(small_corpus.tokens, small_corpus.num_documents, 2)
        layout = layout_chunk(chunks[0], TokenOrder.WORD_MAJOR)
        shuffled = shuffle_to_document_order(layout)
        original = sorted(zip(layout.tokens.doc_ids, layout.tokens.word_ids, layout.tokens.topics, strict=True))
        restored = sorted(zip(shuffled.doc_ids, shuffled.word_ids, shuffled.topics, strict=True))
        assert original == restored


class TestRebuild:
    @pytest.fixture
    def layouts(self, small_corpus):
        config = SaberLDAConfig.paper_defaults(6, num_chunks=3)
        return build_layout(small_corpus.tokens, small_corpus.num_documents, config)

    def test_ssc_equals_sort_rebuild(self, layouts):
        """SSC and the naive global sort must produce identical CSR rows."""
        for layout in layouts:
            ssc = rebuild_doc_topic_ssc(layout, num_topics=6)
            sort = rebuild_doc_topic_sort(layout, num_topics=6)
            np.testing.assert_array_equal(ssc.matrix.to_dense(), sort.matrix.to_dense())

    def test_ssc_equals_reference_counts(self, small_corpus, layouts):
        merged = merge_chunk_rows(
            [rebuild_doc_topic_ssc(layout, 6) for layout in layouts],
            small_corpus.num_documents,
            6,
        )
        reference = SparseDocTopicMatrix.from_tokens(
            small_corpus.tokens, small_corpus.num_documents, 6
        )
        np.testing.assert_array_equal(merged.to_dense(), reference.to_dense())

    def test_merge_preserves_total_count(self, small_corpus, layouts):
        merged = merge_chunk_rows(
            [rebuild_doc_topic_sort(layout, 6) for layout in layouts],
            small_corpus.num_documents,
            6,
        )
        assert merged.total_count() == small_corpus.num_tokens

    def test_empty_chunk_handled(self):
        from repro.core import TokenList
        from repro.corpus.chunking import DocumentChunk

        chunk = DocumentChunk(chunk_id=0, doc_start=0, doc_stop=3, tokens=TokenList.empty())
        layout = layout_chunk(chunk, TokenOrder.WORD_MAJOR)
        rows = rebuild_doc_topic_ssc(layout, num_topics=4)
        assert rows.matrix.num_nonzeros == 0
        assert rows.matrix.num_documents == 3
