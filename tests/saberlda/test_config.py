"""Tests for the SaberLDA configuration and ablation presets."""

import pytest

from repro.gpusim import TITAN_X_MAXWELL
from repro.kernels import KernelBackend
from repro.saberlda import (
    CountRebuildKind,
    PreprocessKind,
    SaberLDAConfig,
    TokenOrder,
    ablation_presets,
)


class TestKernelBackendConfig:
    def test_default_is_vectorized(self):
        assert (
            SaberLDAConfig.paper_defaults(8).kernel_backend
            is KernelBackend.VECTORIZED
        )

    def test_strings_are_coerced_to_the_enum(self):
        config = SaberLDAConfig.paper_defaults(8, kernel_backend="reference")
        assert config.kernel_backend is KernelBackend.REFERENCE

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="kernel backend"):
            SaberLDAConfig.paper_defaults(8, kernel_backend="cuda")


class TestConfig:
    def test_paper_defaults_are_fully_optimised(self):
        config = SaberLDAConfig.paper_defaults(1000)
        assert config.uses_pdow
        assert config.preprocess is PreprocessKind.WARY_TREE
        assert config.count_rebuild is CountRebuildKind.SSC
        assert config.asynchronous
        assert config.params.alpha == pytest.approx(0.05)

    def test_overrides(self):
        config = SaberLDAConfig.paper_defaults(100, num_chunks=7, seed=3)
        assert config.num_chunks == 7
        assert config.seed == 3

    def test_with_overrides_returns_new_object(self):
        config = SaberLDAConfig.paper_defaults(100)
        other = config.with_overrides(num_workers=8)
        assert other.num_workers == 8
        assert config.num_workers != 8 or other is not config

    def test_device_override(self):
        config = SaberLDAConfig.paper_defaults(100, device=TITAN_X_MAXWELL)
        assert config.device.name.startswith("Titan")

    def test_validation(self):
        with pytest.raises(ValueError):
            SaberLDAConfig.paper_defaults(100, num_chunks=0)
        with pytest.raises(ValueError):
            SaberLDAConfig.paper_defaults(100, num_workers=0)
        with pytest.raises(ValueError):
            SaberLDAConfig.paper_defaults(100, threads_per_block=100)
        with pytest.raises(ValueError):
            SaberLDAConfig.paper_defaults(100, num_iterations=0)

    def test_doc_major_is_not_pdow(self):
        config = SaberLDAConfig.paper_defaults(100, token_order=TokenOrder.DOC_MAJOR)
        assert not config.uses_pdow


class TestAblationPresets:
    def test_all_five_levels_present(self):
        presets = ablation_presets(1000)
        assert list(presets) == ["G0", "G1", "G2", "G3", "G4"]

    def test_g0_is_the_unoptimised_baseline(self):
        g0 = ablation_presets(1000)["G0"]
        assert g0.token_order is TokenOrder.DOC_MAJOR
        assert g0.preprocess is PreprocessKind.ALIAS_TABLE
        assert g0.count_rebuild is CountRebuildKind.GLOBAL_SORT
        assert not g0.asynchronous
        assert g0.num_workers == 1

    def test_optimisations_are_cumulative(self):
        presets = ablation_presets(1000)
        assert presets["G1"].token_order is TokenOrder.WORD_MAJOR
        assert presets["G1"].preprocess is PreprocessKind.ALIAS_TABLE
        assert presets["G2"].preprocess is PreprocessKind.WARY_TREE
        assert presets["G2"].count_rebuild is CountRebuildKind.GLOBAL_SORT
        assert presets["G3"].count_rebuild is CountRebuildKind.SSC
        assert not presets["G3"].asynchronous
        assert presets["G4"].asynchronous
        assert presets["G4"].num_workers >= 2

    def test_presets_share_topic_count(self):
        presets = ablation_presets(321)
        assert {preset.params.num_topics for preset in presets.values()} == {321}
