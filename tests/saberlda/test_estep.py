"""Tests for the vectorised ESCA E-step."""

import numpy as np
import pytest

from repro.core import (
    LDAHyperParams,
    SparseDocTopicMatrix,
    count_by_doc_topic_dense,
    count_by_word_topic,
)
from repro.saberlda import WordSide, esca_estep
from repro.sampling import exact_token_distribution


@pytest.fixture
def prepared(tiny_tokens):
    params = LDAHyperParams(num_topics=3, alpha=0.5, beta=0.01)
    doc_topic = SparseDocTopicMatrix.from_tokens(tiny_tokens, 3, 3)
    word_topic = count_by_word_topic(tiny_tokens, 5, 3)
    word_side = WordSide.prepare(word_topic, params.alpha, params.beta)
    return params, doc_topic, word_side


class TestWordSide:
    def test_probs_columns_sum_to_one(self, prepared):
        _params, _doc_topic, word_side = prepared
        np.testing.assert_allclose(word_side.probs.sum(axis=0), np.ones(3))

    def test_cdf_is_rowwise_cumsum(self, prepared):
        _params, _doc_topic, word_side = prepared
        np.testing.assert_allclose(word_side.cdf, np.cumsum(word_side.probs, axis=1))

    def test_prior_mass_formula(self, prepared):
        params, _doc_topic, word_side = prepared
        np.testing.assert_allclose(
            word_side.prior_mass, params.alpha * word_side.probs.sum(axis=1)
        )

    def test_num_topics(self, prepared):
        assert prepared[2].num_topics == 3


class TestEStep:
    def test_output_alignment_and_range(self, prepared, tiny_tokens, rng):
        _params, doc_topic, word_side = prepared
        result = esca_estep(tiny_tokens, doc_topic, word_side, rng)
        assert len(result.new_topics) == tiny_tokens.num_tokens
        assert result.new_topics.min() >= 0
        assert result.new_topics.max() < 3

    def test_input_tokens_unmodified(self, prepared, tiny_tokens, rng):
        _params, doc_topic, word_side = prepared
        before = tiny_tokens.topics.copy()
        esca_estep(tiny_tokens, doc_topic, word_side, rng)
        np.testing.assert_array_equal(tiny_tokens.topics, before)

    def test_branch_fractions_sum(self, prepared, tiny_tokens, rng):
        _params, doc_topic, word_side = prepared
        result = esca_estep(tiny_tokens, doc_topic, word_side, rng)
        assert result.doc_branch_tokens + result.prior_branch_tokens == tiny_tokens.num_tokens
        assert 0.0 <= result.doc_branch_fraction <= 1.0

    def test_empty_token_list(self, prepared, rng):
        from repro.core import TokenList

        _params, doc_topic, word_side = prepared
        result = esca_estep(TokenList.empty(), doc_topic, word_side, rng)
        assert len(result.new_topics) == 0

    def test_vectorized_backend_matches_reference(self, prepared, tiny_tokens, rng_seed):
        _params, doc_topic, word_side = prepared
        reference = esca_estep(
            tiny_tokens, doc_topic, word_side,
            np.random.default_rng(rng_seed), backend="reference",
        )
        vectorized = esca_estep(
            tiny_tokens, doc_topic, word_side,
            np.random.default_rng(rng_seed), backend="vectorized",
        )
        np.testing.assert_array_equal(reference.new_topics, vectorized.new_topics)
        assert reference.doc_branch_tokens == vectorized.doc_branch_tokens

    def test_unknown_backend_is_rejected(self, prepared, tiny_tokens, rng):
        _params, doc_topic, word_side = prepared
        with pytest.raises(ValueError, match="kernel backend"):
            esca_estep(tiny_tokens, doc_topic, word_side, rng, backend="warp")

    def test_samples_exact_conditional_distribution(self, prepared, tiny_tokens):
        """Repeatedly resampling one corpus must match Eq. (1) marginally per token."""
        params, doc_topic, word_side = prepared
        num_repeats = 4000
        counts = np.zeros((tiny_tokens.num_tokens, 3))
        rng = np.random.default_rng(99)
        for _ in range(num_repeats):
            result = esca_estep(tiny_tokens, doc_topic, word_side, rng)
            counts[np.arange(tiny_tokens.num_tokens), result.new_topics] += 1
        empirical = counts / num_repeats

        dense_doc_topic = count_by_doc_topic_dense(tiny_tokens, 3, 3)
        for position, (d, v, _k) in enumerate(tiny_tokens):
            expected = exact_token_distribution(
                dense_doc_topic[d].astype(float), word_side.probs[v], params.alpha
            )
            np.testing.assert_allclose(empirical[position], expected, atol=0.035)

    def test_iterating_improves_likelihood(self, medium_corpus):
        """A few ESCA iterations must increase the training log-likelihood."""
        from repro.core import training_log_likelihood

        # A small alpha keeps documents sparse; 50/K would be ~5 for K=10 and
        # wash out the document signal entirely.
        params = LDAHyperParams(num_topics=10, alpha=0.1, beta=0.01)
        rng = np.random.default_rng(0)
        tokens = medium_corpus.unassigned_copy()
        tokens.randomize_topics(10, rng)

        def likelihood() -> float:
            doc_topic = count_by_doc_topic_dense(tokens, medium_corpus.num_documents, 10)
            word_topic = count_by_word_topic(tokens, medium_corpus.vocabulary_size, 10)
            return training_log_likelihood(tokens, doc_topic, word_topic, params).per_token

        initial = likelihood()
        for _ in range(5):
            doc_topic = SparseDocTopicMatrix.from_tokens(
                tokens, medium_corpus.num_documents, 10
            )
            word_topic = count_by_word_topic(tokens, medium_corpus.vocabulary_size, 10)
            word_side = WordSide.prepare(word_topic, params.alpha, params.beta)
            tokens.topics = esca_estep(tokens, doc_topic, word_side, rng).new_topics
        assert likelihood() > initial + 0.05
