"""Tests for the warp-based and thread-based sampling kernels (Fig. 5)."""

import numpy as np
import pytest

from repro.core import LDAHyperParams, count_by_word_topic, normalize_word_topic
from repro.gpusim import DivergenceTracker
from repro.sampling import XorShiftRNG, exact_token_distribution, word_prior_mass
from repro.saberlda import (
    WarpSampleStats,
    WarpWaryTree,
    thread_sample_token,
    thread_sample_warp,
    warp_sample_token,
)


@pytest.fixture
def word_rows(tiny_tokens):
    counts = count_by_word_topic(tiny_tokens, 5, 3)
    return normalize_word_topic(counts, beta=0.01)


def _empirical(sampler, num_draws, num_topics, seed=0):
    rng = XorShiftRNG(seed)
    draws = np.array([sampler(rng) for _ in range(num_draws)])
    return np.bincount(draws, minlength=num_topics) / num_draws


class TestWarpSample:
    def test_matches_exact_distribution_small(self, word_rows):
        params = LDAHyperParams(num_topics=3, alpha=0.5, beta=0.01)
        nz_indices = np.array([0, 2])
        nz_counts = np.array([3.0, 1.0])
        word_row = word_rows[2]
        tree = WarpWaryTree.build(word_row)
        prior = word_prior_mass(word_row, params.alpha)

        empirical = _empirical(
            lambda rng: warp_sample_token(nz_indices, nz_counts, word_row, tree, prior, rng),
            num_draws=30_000,
            num_topics=3,
        )
        dense_row = np.array([3.0, 0.0, 1.0])
        expected = exact_token_distribution(dense_row, word_row, params.alpha)
        np.testing.assert_allclose(empirical, expected, atol=0.02)

    def test_matches_exact_distribution_long_row(self, rng):
        """Rows longer than one warp exercise the strided prefix-sum search."""
        num_topics = 200
        word_row = rng.random(num_topics) + 1e-3
        word_row /= word_row.sum()
        nz_indices = np.sort(rng.choice(num_topics, size=90, replace=False))
        nz_counts = rng.integers(1, 6, size=90).astype(float)
        tree = WarpWaryTree.build(word_row)
        alpha = 0.25
        prior = word_prior_mass(word_row, alpha)

        empirical = _empirical(
            lambda r: warp_sample_token(nz_indices, nz_counts, word_row, tree, prior, r),
            num_draws=40_000,
            num_topics=num_topics,
        )
        dense_row = np.zeros(num_topics)
        dense_row[nz_indices] = nz_counts
        expected = exact_token_distribution(dense_row, word_row, alpha)
        total_variation = 0.5 * np.abs(empirical - expected).sum()
        assert total_variation < 0.05

    def test_empty_row_samples_from_tree_only(self, word_rows):
        word_row = word_rows[0]
        tree = WarpWaryTree.build(word_row)
        rng = XorShiftRNG(3)
        stats = WarpSampleStats()
        for _ in range(50):
            warp_sample_token(np.array([]), np.array([]), word_row, tree, 0.1, rng, stats)
        assert stats.tree_samples == 50
        assert stats.doc_side_samples == 0

    def test_stats_accumulate(self, word_rows):
        word_row = word_rows[2]
        tree = WarpWaryTree.build(word_row)
        rng = XorShiftRNG(4)
        stats = WarpSampleStats()
        for _ in range(100):
            warp_sample_token(
                np.array([0, 1, 2]), np.array([5.0, 1.0, 2.0]), word_row, tree, 0.01, rng, stats
            )
        assert stats.tokens_sampled == 100
        assert stats.doc_side_samples + stats.tree_samples == 100
        assert stats.warp_iterations >= 100

    def test_agrees_with_thread_based_kernel_distribution(self, word_rows):
        """Warp-based and thread-based kernels sample the same distribution."""
        word_row = word_rows[2]
        tree = WarpWaryTree.build(word_row)
        nz_indices = np.array([0, 1])
        nz_counts = np.array([2.0, 2.0])
        prior = word_prior_mass(word_row, 0.4)
        warp = _empirical(
            lambda r: warp_sample_token(nz_indices, nz_counts, word_row, tree, prior, r),
            20_000,
            3,
            seed=1,
        )
        thread = _empirical(
            lambda r: thread_sample_token(nz_indices, nz_counts, word_row, tree, prior, r),
            20_000,
            3,
            seed=2,
        )
        np.testing.assert_allclose(warp, thread, atol=0.025)


class TestThreadSampleWarp:
    def test_divergence_recorded_for_imbalanced_rows(self, word_rows, rng):
        word_row = word_rows[2]
        tree = WarpWaryTree.build(word_row)
        rows = [
            (np.array([0]), np.array([1.0])),
            (np.array([0, 1, 2]), np.array([30.0, 20.0, 10.0])),
        ] * 8
        tracker = DivergenceTracker()
        results = thread_sample_warp(
            rows,
            np.tile(word_row, (16, 1)),
            [tree] * 16,
            np.full(16, 0.2),
            XorShiftRNG(9),
            tracker,
        )
        assert len(results) == 16
        assert tracker.lane_efficiency < 1.0
        assert tracker.loop_events == 1

    def test_rejects_more_than_warp_width_tokens(self, word_rows):
        word_row = word_rows[0]
        tree = WarpWaryTree.build(word_row)
        rows = [(np.array([0]), np.array([1.0]))] * 33
        with pytest.raises(ValueError):
            thread_sample_warp(
                rows,
                np.tile(word_row, (33, 1)),
                [tree] * 33,
                np.full(33, 0.2),
                XorShiftRNG(1),
                DivergenceTracker(),
            )
