"""Tests for the PDOW data layout."""

import numpy as np
import pytest

from repro.saberlda import SaberLDAConfig, TokenOrder, build_layout, gather_layout_tokens
from repro.saberlda.layout import layout_chunk
from repro.corpus import partition_by_document


@pytest.fixture
def pdow_config():
    return SaberLDAConfig.paper_defaults(10, num_chunks=3)


@pytest.fixture
def layouts(small_corpus, pdow_config):
    return build_layout(small_corpus.tokens, small_corpus.num_documents, pdow_config)


class TestPdowLayout:
    def test_chunk_count(self, layouts, pdow_config):
        assert len(layouts) == pdow_config.num_chunks

    def test_tokens_preserved(self, small_corpus, layouts):
        assert sum(layout.num_tokens for layout in layouts) == small_corpus.num_tokens

    def test_tokens_sorted_by_word_within_chunk(self, layouts):
        for layout in layouts:
            assert (np.diff(layout.tokens.word_ids) >= 0).all()

    def test_documents_partitioned_across_chunks(self, layouts):
        for layout in layouts:
            if layout.num_tokens:
                assert layout.tokens.doc_ids.min() >= layout.chunk.doc_start
                assert layout.tokens.doc_ids.max() < layout.chunk.doc_stop

    def test_word_runs_cover_all_tokens(self, layouts):
        for layout in layouts:
            assert sum(run.num_tokens for run in layout.word_runs) == layout.num_tokens

    def test_word_runs_scheduled_by_decreasing_frequency(self, layouts):
        """Sec. 3.4: most frequent words are scheduled first for load balance."""
        for layout in layouts:
            sizes = [run.num_tokens for run in layout.word_runs]
            assert sizes == sorted(sizes, reverse=True)

    def test_word_runs_are_homogeneous(self, layouts):
        for layout in layouts:
            for run in layout.word_runs[:10]:
                words = layout.tokens.word_ids[run.start : run.stop]
                assert (words == run.word_id).all()

    def test_distinct_words_counts_unique(self, layouts):
        for layout in layouts:
            expected = len(np.unique(layout.tokens.word_ids)) if layout.num_tokens else 0
            assert layout.distinct_words() == expected

    def test_gather_restores_token_multiset(self, small_corpus, layouts):
        gathered = gather_layout_tokens(layouts)
        original = sorted(zip(small_corpus.tokens.doc_ids, small_corpus.tokens.word_ids, strict=True))
        restored = sorted(zip(gathered.doc_ids, gathered.word_ids, strict=True))
        assert original == restored


class TestDocMajorLayout:
    def test_doc_major_sorts_by_document(self, small_corpus):
        config = SaberLDAConfig.paper_defaults(10, num_chunks=2, token_order=TokenOrder.DOC_MAJOR)
        layouts = build_layout(small_corpus.tokens, small_corpus.num_documents, config)
        for layout in layouts:
            assert (np.diff(layout.tokens.doc_ids) >= 0).all()
            assert layout.word_runs == []


class TestShufflePointers:
    def test_pointers_are_a_permutation(self, layouts):
        for layout in layouts:
            pointers = layout.shuffle_pointers
            assert sorted(pointers.tolist()) == list(range(layout.num_tokens))

    def test_pointers_restore_document_grouping(self, small_corpus):
        chunks = partition_by_document(small_corpus.tokens, small_corpus.num_documents, 2)
        layout = layout_chunk(chunks[0], TokenOrder.WORD_MAJOR)
        shuffled_docs = np.empty_like(layout.tokens.doc_ids)
        shuffled_docs[layout.shuffle_pointers] = layout.tokens.doc_ids
        assert (np.diff(shuffled_docs) >= 0).all()
