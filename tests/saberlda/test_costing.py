"""Tests for the workload analyser and per-phase traffic formulas."""

import pytest

from repro.core import SparseDocTopicMatrix
from repro.corpus import NYTIMES, nytimes_replica
from repro.gpusim import GTX_1080, MemorySpace
from repro.saberlda import (
    CountRebuildKind,
    PreprocessKind,
    SaberLDAConfig,
    TokenOrder,
    WorkloadStats,
    build_layout,
    count_rebuild_traffic,
    expected_distinct_topics,
    preprocessing_traffic,
    sampling_traffic,
    transfer_traffic,
)
from repro.saberlda.costing import per_chunk_transfer_bytes, sampling_shared_bytes
from repro.saberlda.projection import cost_iteration_phases


@pytest.fixture(scope="module")
def measured_stats():
    corpus = nytimes_replica(num_documents=80, vocabulary_size=500, seed=3)
    config = SaberLDAConfig.paper_defaults(50, num_chunks=3)
    layouts = build_layout(corpus.tokens, corpus.num_documents, config)
    doc_topic = SparseDocTopicMatrix.from_tokens(corpus.tokens, corpus.num_documents, 50)
    stats = WorkloadStats.measure(layouts, doc_topic, 50, corpus.vocabulary_size, GTX_1080)
    return stats, config, corpus


class TestWorkloadStats:
    def test_measured_token_count(self, measured_stats):
        stats, _config, corpus = measured_stats
        assert stats.num_tokens == corpus.num_tokens

    def test_mean_doc_nnz_bounded_by_topics(self, measured_stats):
        stats, _config, _corpus = measured_stats
        assert 1.0 <= stats.mean_doc_nnz <= 50

    def test_hot_fraction_in_unit_interval(self, measured_stats):
        stats, _config, _corpus = measured_stats
        assert 0.0 <= stats.hot_token_fraction <= 1.0

    def test_distinct_chunk_words_at_least_vocabulary_coverage(self, measured_stats):
        stats, _config, corpus = measured_stats
        assert stats.distinct_chunk_words >= len(set(corpus.tokens.word_ids.tolist()))

    def test_from_descriptor_full_scale(self):
        stats = WorkloadStats.from_descriptor(NYTIMES, 1000, GTX_1080, num_chunks=3)
        assert stats.num_tokens == NYTIMES.num_tokens
        assert stats.mean_doc_nnz <= 1000
        assert len(stats.chunk_token_counts) == 3

    def test_expected_distinct_topics_monotone_in_length(self):
        assert expected_distinct_topics(500, 1000) > expected_distinct_topics(50, 1000)

    def test_expected_distinct_topics_bounded(self):
        assert expected_distinct_topics(100, 1000) <= 1000


class TestSamplingTraffic:
    def test_word_major_cheaper_than_doc_major_at_full_scale(self):
        """At NYTimes scale (B̂ >> L2), PDOW must beat the doc-major order (Sec. 3.1.3)."""
        stats = WorkloadStats.from_descriptor(NYTIMES, 1000, GTX_1080, num_chunks=3)
        word_major = SaberLDAConfig.paper_defaults(1000, token_order=TokenOrder.WORD_MAJOR)
        doc_major = SaberLDAConfig.paper_defaults(1000, token_order=TokenOrder.DOC_MAJOR)
        word_bytes = sampling_traffic(stats, word_major, GTX_1080).bytes_at(MemorySpace.GLOBAL)
        doc_bytes = sampling_traffic(stats, doc_major, GTX_1080).bytes_at(MemorySpace.GLOBAL)
        assert word_bytes < doc_bytes

    def test_traffic_scales_with_tokens(self, measured_stats):
        stats, config, _corpus = measured_stats
        traffic = sampling_traffic(stats, config, GTX_1080)
        assert traffic.bytes_at(MemorySpace.GLOBAL) > stats.num_tokens * 8


class TestRebuildTraffic:
    def test_ssc_cheaper_than_sort(self, measured_stats):
        stats, config, _corpus = measured_stats
        ssc = count_rebuild_traffic(
            stats, config.with_overrides(count_rebuild=CountRebuildKind.SSC), GTX_1080
        )
        sort = count_rebuild_traffic(
            stats, config.with_overrides(count_rebuild=CountRebuildKind.GLOBAL_SORT), GTX_1080
        )
        assert ssc.bytes_at(MemorySpace.GLOBAL) < sort.bytes_at(MemorySpace.GLOBAL)

    def test_sort_slower_on_word_major_order(self, measured_stats):
        """Fig. 9: the doc-topic rebuild is more expensive under PDOW than doc-major."""
        stats, config, _corpus = measured_stats
        sort_config = config.with_overrides(count_rebuild=CountRebuildKind.GLOBAL_SORT)
        word_major = count_rebuild_traffic(stats, sort_config, GTX_1080)
        doc_major = count_rebuild_traffic(
            stats, sort_config.with_overrides(token_order=TokenOrder.DOC_MAJOR), GTX_1080
        )
        assert word_major.bytes_at(MemorySpace.GLOBAL) > doc_major.bytes_at(MemorySpace.GLOBAL)


class TestPreprocessingTraffic:
    def test_wary_tree_much_cheaper_than_alias(self):
        """Fig. 9 G1->G2: the W-ary tree removes ~98% of the pre-processing time."""
        from repro.gpusim import CostModel

        stats = WorkloadStats.from_descriptor(NYTIMES, 1000, GTX_1080, num_chunks=3)
        alias_config = SaberLDAConfig.paper_defaults(1000, preprocess=PreprocessKind.ALIAS_TABLE)
        tree_config = SaberLDAConfig.paper_defaults(1000, preprocess=PreprocessKind.WARY_TREE)
        model = CostModel(GTX_1080)
        alias_time = model.kernel_time(preprocessing_traffic(stats, alias_config, GTX_1080))
        tree_time = model.kernel_time(preprocessing_traffic(stats, tree_config, GTX_1080))
        assert tree_time.seconds < 0.1 * alias_time.seconds


class TestTransfer:
    def test_transfer_covers_tokens_and_rows(self, measured_stats):
        stats, config, _corpus = measured_stats
        traffic = transfer_traffic(stats, config)
        assert traffic.host_device_bytes > stats.num_tokens * 12

    def test_per_chunk_split_sums_to_total(self, measured_stats):
        stats, config, _corpus = measured_stats
        per_chunk = per_chunk_transfer_bytes(stats, config)
        assert sum(per_chunk) == pytest.approx(transfer_traffic(stats, config).host_device_bytes)


class TestSharedBytesAndProjection:
    def test_shared_bytes_grow_with_topics(self):
        assert sampling_shared_bytes(10_000, 256, 130) > sampling_shared_bytes(1000, 256, 130)

    def test_cost_iteration_has_all_phases(self, measured_stats):
        stats, config, _corpus = measured_stats
        cost = cost_iteration_phases(stats, config)
        assert set(cost.phase_seconds) == {"sampling", "a_update", "preprocessing", "transfer"}
        assert cost.total_seconds > 0

    def test_async_workers_hide_transfer(self):
        stats = WorkloadStats.from_descriptor(NYTIMES, 1000, GTX_1080, num_chunks=6)
        sync_config = SaberLDAConfig.paper_defaults(
            1000, num_chunks=6, asynchronous=False, num_workers=1
        )
        async_config = SaberLDAConfig.paper_defaults(1000, num_chunks=6, num_workers=4)
        sync_cost = cost_iteration_phases(stats, sync_config)
        async_cost = cost_iteration_phases(stats, async_config)
        assert async_cost.phase_seconds["transfer"] < sync_cost.phase_seconds["transfer"]
