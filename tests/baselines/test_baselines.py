"""Tests for the baseline LDA systems (dense GPU, ESCA CPU, Gibbs, F+LDA, WarpLDA)."""

import pytest

from repro.baselines import (
    CollapsedGibbsTrainer,
    DenseGpuTrainer,
    EscaCpuTrainer,
    FTreeLdaTrainer,
    GpuOutOfMemoryError,
    WarpLdaTrainer,
)
from repro.core import LDAHyperParams
from repro.corpus import NYTIMES
from repro.gpusim import GTX_1080
from repro.saberlda import WorkloadStats


@pytest.fixture(scope="module")
def corpus(make_corpus):
    return make_corpus(50, 120, 5, 30, 3)


@pytest.fixture
def params():
    return LDAHyperParams(num_topics=5, alpha=0.1, beta=0.01)


@pytest.fixture(scope="module")
def full_scale_stats():
    return WorkloadStats.from_descriptor(NYTIMES, 1000, GTX_1080, num_chunks=3)


def _fit(trainer, corpus):
    return trainer.fit(corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size)


class TestEscaCpu:
    def test_likelihood_improves(self, corpus, params):
        result = _fit(EscaCpuTrainer(params, num_iterations=6, seed=0), corpus)
        values = result.history.log_likelihood_per_token
        assert values[-1] > values[0]

    def test_history_length(self, corpus, params):
        result = _fit(EscaCpuTrainer(params, num_iterations=4, seed=0), corpus)
        assert len(result.history.log_likelihood_per_token) == 4

    def test_cpu_iteration_slower_than_saberlda(self, full_scale_stats, params):
        from repro.saberlda import SaberLDAConfig
        from repro.saberlda.projection import cost_iteration_phases

        cpu_seconds = EscaCpuTrainer(
            LDAHyperParams.paper_defaults(1000)
        ).iteration_seconds(full_scale_stats)
        gpu_seconds = cost_iteration_phases(
            full_scale_stats, SaberLDAConfig.paper_defaults(1000, num_chunks=3)
        ).total_seconds
        assert cpu_seconds > 2.0 * gpu_seconds


class TestDenseGpu:
    def test_likelihood_improves(self, corpus, params):
        result = _fit(DenseGpuTrainer(params, num_iterations=6, seed=0), corpus)
        values = result.history.log_likelihood_per_token
        assert values[-1] > values[0]

    def test_out_of_memory_at_5000_topics_on_nytimes(self):
        """Sec. 4.4: BIDMach reports OOM with 5,000 topics on NYTimes."""
        trainer = DenseGpuTrainer(LDAHyperParams.paper_defaults(5000))
        with pytest.raises(GpuOutOfMemoryError):
            trainer.check_fits(NYTIMES.num_documents, NYTIMES.vocabulary_size)

    def test_fits_at_256_topics(self):
        trainer = DenseGpuTrainer(LDAHyperParams.paper_defaults(256))
        trainer.check_fits(NYTIMES.num_documents, NYTIMES.vocabulary_size)

    def test_iteration_cost_grows_linearly_with_topics(self):
        small = DenseGpuTrainer(LDAHyperParams.paper_defaults(1000)).iteration_seconds(
            WorkloadStats.from_descriptor(NYTIMES, 1000, GTX_1080)
        )
        large = DenseGpuTrainer(LDAHyperParams.paper_defaults(3000)).iteration_seconds(
            WorkloadStats.from_descriptor(NYTIMES, 3000, GTX_1080)
        )
        assert large > 2.0 * small

    def test_slower_than_saberlda_per_iteration(self, full_scale_stats):
        from repro.saberlda import SaberLDAConfig
        from repro.saberlda.projection import cost_iteration_phases

        dense_seconds = DenseGpuTrainer(
            LDAHyperParams.paper_defaults(1000), check_memory=False
        ).iteration_seconds(full_scale_stats)
        saber_seconds = cost_iteration_phases(
            full_scale_stats, SaberLDAConfig.paper_defaults(1000, num_chunks=3)
        ).total_seconds
        assert dense_seconds > saber_seconds


class TestCollapsedGibbs:
    def test_likelihood_improves_quickly(self, corpus, params):
        result = _fit(CollapsedGibbsTrainer(params, num_iterations=3, seed=0), corpus)
        values = result.history.log_likelihood_per_token
        assert values[-1] > values[0]

    def test_counts_remain_consistent(self, corpus, params):
        """After a run, the model's word-topic counts must total the token count."""
        result = _fit(CollapsedGibbsTrainer(params, num_iterations=2, seed=0), corpus)
        assert result.model.word_topic_counts.sum() == corpus.num_tokens


class TestFTreeLda:
    def test_is_a_gibbs_sampler(self, params):
        assert issubclass(FTreeLdaTrainer, CollapsedGibbsTrainer)

    def test_sparse_iteration_cheaper_than_dense_gibbs(self, full_scale_stats):
        dense = CollapsedGibbsTrainer(LDAHyperParams.paper_defaults(1000)).iteration_seconds(
            full_scale_stats
        )
        sparse = FTreeLdaTrainer(LDAHyperParams.paper_defaults(1000)).iteration_seconds(
            full_scale_stats
        )
        assert sparse < dense

    def test_cost_grows_slowly_with_topics(self):
        k1 = FTreeLdaTrainer(LDAHyperParams.paper_defaults(1000)).iteration_seconds(
            WorkloadStats.from_descriptor(NYTIMES, 1000, GTX_1080)
        )
        k10 = FTreeLdaTrainer(LDAHyperParams.paper_defaults(10_000)).iteration_seconds(
            WorkloadStats.from_descriptor(NYTIMES, 10_000, GTX_1080)
        )
        assert k10 < 5.0 * k1


class TestWarpLda:
    def test_likelihood_improves(self, corpus, params):
        result = _fit(WarpLdaTrainer(params, num_iterations=8, seed=0), corpus)
        values = result.history.log_likelihood_per_token
        assert values[-1] > values[0]

    def test_reaches_quality_comparable_to_esca(self, corpus, params):
        """The MH sampler converges towards a similar (possibly slightly worse) optimum."""
        esca = _fit(EscaCpuTrainer(params, num_iterations=8, seed=1), corpus)
        warplda = _fit(WarpLdaTrainer(params, num_iterations=8, seed=1), corpus)
        gap = abs(
            esca.history.log_likelihood_per_token[-1]
            - warplda.history.log_likelihood_per_token[-1]
        )
        assert gap < 0.5

    def test_per_iteration_cost_is_topic_independent(self):
        k1 = WarpLdaTrainer(LDAHyperParams.paper_defaults(1000)).iteration_seconds(
            WorkloadStats.from_descriptor(NYTIMES, 1000, GTX_1080)
        )
        k10 = WarpLdaTrainer(LDAHyperParams.paper_defaults(10_000)).iteration_seconds(
            WorkloadStats.from_descriptor(NYTIMES, 10_000, GTX_1080)
        )
        assert k10 == pytest.approx(k1, rel=0.01)


class TestHistoryHelpers:
    def test_iterations_to_reach(self, corpus, params):
        result = _fit(EscaCpuTrainer(params, num_iterations=6, seed=0), corpus)
        history = result.history
        target = history.log_likelihood_per_token[-1]
        assert history.iterations_to_reach(target) <= 6
        assert history.iterations_to_reach(0.0) is None

    def test_convergence_curve_timing(self, corpus, params):
        result = _fit(EscaCpuTrainer(params, num_iterations=3, seed=0), corpus)
        curve = result.convergence_curve(seconds_per_iteration=2.0)
        assert [t for t, _v in curve] == [2.0, 4.0, 6.0]
