"""Chrome trace / metrics JSON exporters and the ``python -m repro.telemetry`` CLI."""

import json

import pytest

from repro.telemetry import (
    DOMAIN_SIM,
    DOMAIN_WALL,
    MetricsRegistry,
    Span,
    chrome_trace,
    load_trace,
    metrics_payload,
    write_chrome_trace,
    write_metrics_json,
)
from repro.telemetry.cli import main


@pytest.fixture()
def spans():
    return [
        Span("batch", 0.0, 0.002, domain=DOMAIN_SIM, category="serving",
             track=1, depth=1, seq=0, args=(("batch_id", 0),)),
        Span("request", 0.0, 0.004, domain=DOMAIN_SIM, category="served",
             depth=1, seq=1),
        Span("serve_wallclock", 0.0, 0.25, domain=DOMAIN_WALL,
             category="serving", seq=2),
    ]


class TestChromeTrace:
    def test_structure_is_the_trace_event_object_form(self, spans):
        trace = chrome_trace(spans, metadata={"bench": "tiny"})
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"] == {"bench": "tiny"}
        events = trace["traceEvents"]
        # Two process-name metadata records, one per clock domain.
        meta = [event for event in events if event["ph"] == "M"]
        assert {event["args"]["name"] for event in meta} == {
            "sim seconds",
            "wall seconds",
        }
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == len(spans)

    def test_domains_map_to_pids_and_times_to_microseconds(self, spans):
        events = [e for e in chrome_trace(spans)["traceEvents"] if e["ph"] == "X"]
        by_name = {event["name"]: event for event in events}
        assert by_name["batch"]["pid"] == 0  # sim
        assert by_name["serve_wallclock"]["pid"] == 1  # wall
        assert by_name["batch"]["tid"] == 1
        assert by_name["batch"]["dur"] == pytest.approx(2_000.0)  # 2 ms in us
        assert by_name["serve_wallclock"]["dur"] == pytest.approx(250_000.0)
        assert by_name["batch"]["args"] == {"batch_id": 0}

    def test_whole_file_is_valid_json(self, spans, tmp_path):
        path = write_chrome_trace(str(tmp_path / "trace.json"), spans)
        with open(path, "r", encoding="utf-8") as handle:
            parsed = json.load(handle)
        assert "traceEvents" in parsed

    def test_load_round_trips_what_the_summary_reads(self, spans, tmp_path):
        path = write_chrome_trace(str(tmp_path / "trace.json"), spans)
        loaded = load_trace(path)
        assert len(loaded) == len(spans)
        for original, parsed in zip(spans, loaded, strict=True):
            assert parsed.name == original.name
            assert parsed.domain == original.domain
            assert parsed.category == original.category
            assert parsed.track == original.track
            assert parsed.start_seconds == pytest.approx(
                original.start_seconds, abs=1e-12
            )
            assert parsed.duration_seconds == pytest.approx(
                original.duration_seconds, rel=1e-9
            )
            assert parsed.args_dict() == original.args_dict()


class TestMetricsJson:
    def test_payload_preserves_registration_order(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("serving.admitted").inc(12)
        registry.histogram("serving.batch_docs", (2.0, 4.0)).observe(3)
        payload = metrics_payload(registry, metadata={"seed": 13})
        assert list(payload["metrics"]) == ["serving.admitted", "serving.batch_docs"]
        assert payload["metadata"] == {"seed": 13}
        path = write_metrics_json(str(tmp_path / "metrics.json"), registry)
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["metrics"]["serving.admitted"] == 12


class TestCli:
    @pytest.fixture()
    def trace_path(self, spans, tmp_path):
        return write_chrome_trace(str(tmp_path / "trace.json"), spans)

    def test_table_output_and_exit_zero(self, trace_path, capsys):
        assert main([trace_path]) == 0
        out = capsys.readouterr().out
        assert "batch" in out and "serve_wallclock" in out
        assert "sim run" in out and "wall run" in out
        assert "% of run" in out

    def test_json_output_reproduces_the_pinned_percentiles(
        self, spans, trace_path, capsys
    ):
        assert main([trace_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_spans"] == len(spans)
        request = next(p for p in payload["phases"] if p["name"] == "request")
        assert request["count"] == 1
        # One sample answers every percentile with itself (pinned rule).
        assert request["p50_seconds"] == request["p99_seconds"]
        assert request["p50_seconds"] == pytest.approx(0.004, rel=1e-9)

    def test_domain_filter(self, trace_path, capsys):
        assert main([trace_path, "--domain", "wall", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in payload["phases"]] == ["serve_wallclock"]

    def test_metrics_sidecar_is_printed(self, trace_path, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("pool.answered").inc(3)
        metrics = write_metrics_json(str(tmp_path / "metrics.json"), registry)
        assert main([trace_path, "--metrics", metrics]) == 0
        assert "pool.answered: 3.0" in capsys.readouterr().out

    def test_missing_trace_is_exit_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "could not read trace" in capsys.readouterr().err

    def test_invalid_json_is_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main([str(bad)]) == 2
        assert "could not read trace" in capsys.readouterr().err

    def test_missing_metrics_is_exit_two(self, trace_path, tmp_path, capsys):
        assert main([trace_path, "--metrics", str(tmp_path / "nope.json")]) == 2
        assert "could not read metrics" in capsys.readouterr().err
