"""The two clock domains: deterministic sim time, sanctioned wall time."""

import pytest

from repro.bench.timing import stopwatch
from repro.telemetry import (
    DOMAIN_SIM,
    DOMAIN_WALL,
    Clock,
    SimClock,
    WallClock,
)


class TestSimClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.now() == 0.0
        clock.advance_to(1.5)
        assert clock.now() == 1.5
        clock.advance_to(1.5)  # standing still is allowed
        assert clock.now() == 1.5

    def test_never_runs_backwards(self):
        clock = SimClock(current=2.0)
        with pytest.raises(ValueError, match="cannot run backwards"):
            clock.advance_to(1.0)
        assert clock.now() == 2.0  # a rejected advance changes nothing

    def test_domain_is_sim(self):
        assert SimClock().domain == DOMAIN_SIM

    def test_satisfies_the_clock_protocol(self):
        assert isinstance(SimClock(), Clock)


class TestWallClock:
    def test_measures_forward_from_construction(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first >= 0.0

    def test_domain_is_wall(self):
        assert WallClock().domain == DOMAIN_WALL

    def test_shared_stopwatch_aligns_origins(self):
        """Two clocks on one watch read the same time axis."""
        watch = stopwatch()
        left = WallClock(watch)
        right = WallClock(watch)
        assert left.watch is right.watch is watch
        # The shared origin means readings interleave monotonically.
        readings = [left.now(), right.now(), left.now()]
        assert readings == sorted(readings)

    def test_satisfies_the_clock_protocol(self):
        assert isinstance(WallClock(), Clock)
