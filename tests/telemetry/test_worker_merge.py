"""Cross-process telemetry over the real worker pool.

Real OS processes ship span/metric buffers back over the result queue
(``"telemetry"`` messages preceding each ``"ok"``); the parent merges
them deterministically.  These tests pin the three properties the wire
protocol exists for: the merge order never depends on arrival
interleaving, a killed worker contributes exactly the prefix it got
out, and tracing changes no served bit.
"""

import time

import numpy as np
import pytest

from repro.core import LDAHyperParams, save_model_mmap
from repro.core.model import LDAModel
from repro.serving import (
    InferenceEngine,
    ServingRequest,
    WorkerPool,
    pool_results_digest,
    serve_wallclock,
)
from repro.telemetry import (
    DOMAIN_WALL,
    MetricsRegistry,
    Tracer,
    WallClock,
    pinned_percentile,
    span_coverage,
)

NUM_TOPICS = 6
VOCABULARY = 80
SEED = 13
NUM_SWEEPS = 3


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    rng = np.random.default_rng(SEED)
    counts = rng.integers(0, 30, size=(VOCABULARY, NUM_TOPICS)).astype(np.int64)
    model = LDAModel(
        word_topic_counts=counts,
        params=LDAHyperParams(num_topics=NUM_TOPICS, alpha=0.1, beta=0.01),
    )
    directory = str(tmp_path_factory.mktemp("ckpt") / "model")
    return save_model_mmap(model, directory)


@pytest.fixture(scope="module")
def requests():
    rng = np.random.default_rng(SEED + 1)
    return [
        ServingRequest(
            request_id=index,
            word_ids=rng.integers(0, VOCABULARY, size=12).astype(np.int32),
            arrival_seconds=0.0,
        )
        for index in range(12)
    ]


@pytest.fixture(scope="module")
def reference_digest(checkpoint, requests):
    engine = InferenceEngine.from_mmap_checkpoint(
        checkpoint, seed=SEED, num_sweeps=NUM_SWEEPS, mmap_mode=None
    )
    outcomes = [
        type(
            "Outcome",
            (),
            {
                "request_id": request.request_id,
                "theta": engine.infer_request(
                    request.word_ids, request.request_id
                ).theta,
            },
        )()
        for request in requests
    ]
    return pool_results_digest(outcomes)


def _traced_pool(checkpoint, **overrides):
    options = dict(
        checkpoint_dir=checkpoint,
        num_workers=2,
        seed=SEED,
        num_sweeps=NUM_SWEEPS,
        tracer=Tracer(WallClock()),
        metrics=MetricsRegistry(),
    )
    options.update(overrides)
    return WorkerPool(**options)


class TestTracedServing:
    def test_traced_run_keeps_the_digest(self, checkpoint, requests, reference_digest):
        with _traced_pool(checkpoint) as pool:
            report = serve_wallclock(pool, requests, batch_docs=4)
        assert report.failed == 0
        assert pool_results_digest(report.outcomes) == reference_digest

    def test_worker_spans_arrive_merged_and_ordered(self, checkpoint, requests):
        with _traced_pool(checkpoint) as pool:
            report = serve_wallclock(pool, requests, batch_docs=4)
            tracer = pool.tracer
            assert not pool._telemetry  # drained by serve_wallclock
        names = [span.name for span in tracer.spans]
        assert names.count("ipc_batch") == len(report.batches)
        assert names.count("worker_batch") >= 1
        assert names.count("fold_in") == report.answered
        # seq strictly increasing over the combined record.
        seqs = [span.seq for span in tracer.spans]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # Merged worker spans are grouped by ascending worker id
        # (track = worker_id + 1), regardless of arrival interleaving.
        worker_tracks = [
            span.track for span in tracer.spans if span.name == "worker_batch"
        ]
        assert worker_tracks == sorted(worker_tracks)
        assert set(worker_tracks) <= {1, 2}  # parent track 0 never collides

    def test_root_span_and_request_percentiles_match_the_report(
        self, checkpoint, requests
    ):
        with _traced_pool(checkpoint) as pool:
            report = serve_wallclock(pool, requests, batch_docs=4)
            tracer = pool.tracer
        roots = [span for span in tracer.spans if span.name == "serve_wallclock"]
        assert len(roots) == 1
        assert roots[0].domain == DOMAIN_WALL
        assert roots[0].duration_seconds == report.wall_seconds
        assert span_coverage(tracer.spans, report.wall_seconds) == pytest.approx(1.0)
        # Request spans reuse the report's exact latency floats.
        latencies = [
            span.duration_seconds
            for span in tracer.spans
            if span.name == "request"
        ]
        assert len(latencies) == report.answered
        assert pinned_percentile(latencies, 50.0) == report.latency_percentile(50.0)
        assert pinned_percentile(latencies, 99.0) == report.latency_percentile(99.0)

    def test_worker_metrics_merge_as_deltas(self, checkpoint, requests):
        with _traced_pool(checkpoint) as pool:
            report = serve_wallclock(pool, requests, batch_docs=3)
            flat = pool.metrics.as_dict()
        assert flat["pool.admitted"] == len(requests)
        assert flat["pool.answered"] == report.answered
        assert flat["worker.batches"] == len(report.batches)
        assert flat["worker.documents"] == report.answered
        assert flat["worker.busy_seconds"] > 0.0

    def test_untraced_pool_buffers_nothing(self, checkpoint, requests):
        with WorkerPool(
            checkpoint_dir=checkpoint,
            num_workers=2,
            seed=SEED,
            num_sweeps=NUM_SWEEPS,
        ) as pool:
            serve_wallclock(pool, requests, batch_docs=4)
            assert pool._telemetry == {}
            assert pool.tracer.spans == []
            pool.drain_worker_telemetry()  # harmless no-op
            assert pool.metrics.as_dict() == {}


class TestKilledWorker:
    def test_dead_worker_contributes_its_prefix(
        self, checkpoint, requests, reference_digest
    ):
        with _traced_pool(checkpoint, batch_timeout_seconds=20.0) as pool:
            first = requests[: len(requests) // 2]
            second = requests[len(requests) // 2 :]
            # Worker 0 finishes one clean batch (its telemetry gets out)...
            pool.submit(first, worker_id=0)
            outcomes = [pool.collect()]
            # ...then dies mid-flight on the next one.
            pool.submit(first, stall_seconds=8.0, worker_id=0)
            time.sleep(0.3)
            pool._processes[0].kill()
            pool.submit(second, worker_id=1)
            outcomes.extend([pool.collect(), pool.collect()])
            assert pool.retries == 1
            pool.drain_worker_telemetry()
            tracer = pool.tracer
            flat = pool.metrics.as_dict()
        # The clean batch's worker telemetry survived the kill; the
        # stalled batch died before shipping, so it is simply absent.
        worker_batches = [s for s in tracer.spans if s.name == "worker_batch"]
        batch_ids = {dict(s.args).get("batch_id") for s in worker_batches}
        assert len(worker_batches) == 3  # 1 from worker 0 + retry + second batch
        assert flat["worker.batches"] == 3.0
        assert flat["pool.retries"] == 1.0
        # Every parent-side batch still has its ipc span and the digest holds.
        assert len([s for s in tracer.spans if s.name == "ipc_batch"]) == 3
        assert batch_ids  # worker spans carry their batch tags
        # ``first`` was answered twice (clean + retried); deterministic
        # per-request RNG makes the copies identical, so dedupe by id.
        by_request = {}
        for outcome in outcomes:
            for rid, result in zip(outcome.request_ids, outcome.results, strict=True):
                by_request[rid] = type(
                    "Outcome", (), {"request_id": rid, "theta": result.theta}
                )()
        flat_outcomes = [by_request[rid] for rid in sorted(by_request)]
        assert pool_results_digest(flat_outcomes) == reference_digest
