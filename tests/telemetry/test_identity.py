"""Tracing must be a pure observer: enabling it changes no result bit.

These tests run the same workload twice — tracer/metrics disabled, then
enabled — and pin the outputs bit for bit: serving digests, trained
model counts, log-likelihoods, and the trainer's RNG end state.  They
are the teeth behind "zero overhead when disabled, zero interference
when enabled".
"""

import numpy as np
import pytest

from repro.saberlda import SaberLDAConfig
from repro.saberlda.trainer import SaberLDATrainer
from repro.serving import (
    BatchScheduler,
    InferenceEngine,
    RequestQueue,
    ResultCache,
    TopicServer,
    engine_results_digest,
    make_requests,
    poisson_arrivals,
)
from repro.telemetry import (
    DOMAIN_SIM,
    MetricsRegistry,
    SimClock,
    Tracer,
    null_metrics,
    null_tracer,
    summarize_spans,
)

NUM_TOPICS = 6
SERVE_SEED = 31


@pytest.fixture(scope="module")
def model(make_corpus):
    corpus = make_corpus(40, 100, 5, 30, 123)
    config = SaberLDAConfig.paper_defaults(
        NUM_TOPICS, num_iterations=3, num_chunks=4, seed=77, evaluate_every=3
    )
    trainer = SaberLDATrainer(config=config)
    return trainer.fit(
        corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size
    ).model


def _serve(model, documents, arrivals, tracer, metrics):
    engine = InferenceEngine.from_model(model, num_sweeps=6, seed=SERVE_SEED)
    server = TopicServer(
        engine,
        scheduler=BatchScheduler(max_batch_docs=4, max_wait_seconds=1e-5),
        queue=RequestQueue(max_depth=32),
        cache=ResultCache(capacity=100),
        tracer=tracer,
        metrics=metrics,
    )
    return server.serve(make_requests(documents, arrivals))


class TestServingIdentity:
    @pytest.fixture()
    def workload(self, rng):
        documents = [
            rng.integers(0, 100, size=int(rng.integers(5, 25))).astype(np.int32)
            for _ in range(30)
        ]
        # Repeat a few documents so the cache path runs under tracing too.
        documents[10] = documents[0]
        documents[20] = documents[1]
        arrivals = poisson_arrivals(2_000.0, len(documents), rng)
        return documents, arrivals

    def test_digests_and_reports_match_bit_for_bit(self, model, workload):
        documents, arrivals = workload
        baseline = _serve(model, documents, arrivals, null_tracer(), null_metrics())
        tracer = Tracer(SimClock())
        traced = _serve(model, documents, arrivals, tracer, MetricsRegistry())
        assert engine_results_digest(traced.outcomes) == engine_results_digest(
            baseline.outcomes
        )
        assert traced.summary() == baseline.summary()
        assert tracer.spans  # the traced run actually recorded something

    def test_sim_trace_reproduces_report_percentiles_exactly(self, model, workload):
        """`request` span durations ARE the report's latency multiset."""
        documents, arrivals = workload
        tracer = Tracer(SimClock())
        metrics = MetricsRegistry()
        report = _serve(model, documents, arrivals, tracer, metrics)
        request_rows = {
            (s.domain, s.name): s for s in summarize_spans(tracer.spans)
        }
        row = request_rows[(DOMAIN_SIM, "request")]
        assert row.count == report.answered
        assert row.p50_seconds == report.latency_percentile(50.0)
        assert row.p99_seconds == report.latency_percentile(99.0)
        # And the counters agree with the report's own bookkeeping.
        flat = metrics.as_dict()
        assert flat["serving.admitted"] == report.answered - report.cache_hits
        assert flat["serving.cache_hits"] == report.cache_hits
        assert flat["serving.documents"] + report.cache_hits == report.answered

    def test_cache_hit_spans_are_zero_latency_points(self, model, workload):
        documents, arrivals = workload
        tracer = Tracer(SimClock())
        report = _serve(model, documents, arrivals, tracer, MetricsRegistry())
        assert report.cache_hits > 0
        hits = [
            span
            for span in tracer.spans
            if span.name == "request" and span.category == "cache_hit"
        ]
        assert len(hits) == report.cache_hits
        assert all(span.duration_seconds == 0.0 for span in hits)


class TestTrainerIdentity:
    def _fit(self, corpus, tracer, metrics):
        config = SaberLDAConfig.paper_defaults(
            4, num_iterations=3, num_chunks=2, seed=5, evaluate_every=1
        )
        trainer = SaberLDATrainer(config=config, tracer=tracer, metrics=metrics)
        result = trainer.fit(
            corpus.unassigned_copy(), corpus.num_documents, corpus.vocabulary_size
        )
        return trainer, result

    def test_model_and_rng_end_state_match_bit_for_bit(self, tiny_corpus):
        base_trainer, base = self._fit(tiny_corpus, null_tracer(), null_metrics())
        tracer = Tracer(SimClock())
        traced_trainer, traced = self._fit(tiny_corpus, tracer, MetricsRegistry())
        assert np.array_equal(
            traced.model.word_topic_counts, base.model.word_topic_counts
        )
        assert [r.log_likelihood_per_token for r in traced.history] == [
            r.log_likelihood_per_token for r in base.history
        ]
        assert traced.simulated_seconds == base.simulated_seconds
        # The tracer never touched the training RNG stream.
        assert (
            traced_trainer._rng.bit_generator.state
            == base_trainer._rng.bit_generator.state
        )
        assert tracer.spans

    def test_iteration_spans_tile_the_simulated_timeline(self, tiny_corpus):
        tracer = Tracer(SimClock())
        _trainer, result = self._fit(tiny_corpus, tracer, MetricsRegistry())
        iterations = [span for span in tracer.spans if span.name == "iteration"]
        assert len(iterations) == len(result.history)
        # Back-to-back: each iteration starts where the previous ended.
        for before, after in zip(iterations, iterations[1:], strict=False):
            assert after.start_seconds == pytest.approx(before.end_seconds)
        assert iterations[-1].end_seconds == pytest.approx(result.simulated_seconds)
        # Phase children sum to their iteration.
        first_phases = [
            span
            for span in tracer.spans
            if span.category == "phase"
            and iterations[0].start_seconds <= span.start_seconds < iterations[0].end_seconds
        ]
        assert sum(s.duration_seconds for s in first_phases) == pytest.approx(
            iterations[0].duration_seconds
        )

    def test_trainer_metrics_count_iterations(self, tiny_corpus):
        metrics = MetricsRegistry()
        _trainer, result = self._fit(tiny_corpus, Tracer(SimClock()), metrics)
        flat = metrics.as_dict()
        assert flat["train.iterations"] == len(result.history)
        assert flat["train.simulated_seconds"] == pytest.approx(
            result.simulated_seconds
        )
