"""Per-phase summaries and the span-coverage acceptance metric."""

from repro.telemetry import (
    DOMAIN_SIM,
    DOMAIN_WALL,
    Span,
    format_phase_table,
    pinned_percentile,
    run_seconds,
    span_coverage,
    summarize_spans,
)


def _span(name, start, duration, domain=DOMAIN_SIM, depth=0):
    return Span(name, start, duration, domain=domain, depth=depth)


class TestRunSeconds:
    def test_extent_is_first_start_to_last_end(self):
        spans = [_span("a", 1.0, 2.0), _span("b", 0.5, 1.0), _span("c", 2.0, 3.0)]
        assert run_seconds(spans) == 4.5  # 0.5 .. 5.0

    def test_domain_filter(self):
        spans = [_span("a", 0.0, 1.0), _span("b", 10.0, 5.0, domain=DOMAIN_WALL)]
        assert run_seconds(spans, DOMAIN_SIM) == 1.0
        assert run_seconds(spans, DOMAIN_WALL) == 5.0

    def test_empty_is_zero(self):
        assert run_seconds([]) == 0.0
        assert run_seconds([_span("a", 0.0, 1.0)], DOMAIN_WALL) == 0.0


class TestSummarize:
    def test_groups_by_domain_and_name_in_first_seen_order(self):
        spans = [
            _span("batch", 0.0, 1.0),
            _span("request", 0.0, 2.0),
            _span("batch", 1.0, 3.0),
            _span("batch", 0.0, 9.0, domain=DOMAIN_WALL),
        ]
        summaries = summarize_spans(spans)
        assert [(s.domain, s.name) for s in summaries] == [
            (DOMAIN_SIM, "batch"),
            (DOMAIN_SIM, "request"),
            (DOMAIN_WALL, "batch"),
        ]
        batch = summaries[0]
        assert batch.count == 2
        assert batch.total_seconds == 4.0
        assert batch.p50_seconds == pinned_percentile([1.0, 3.0], 50.0)
        assert batch.p99_seconds == pinned_percentile([1.0, 3.0], 99.0)

    def test_share_uses_each_domains_own_extent_by_default(self):
        spans = [
            _span("batch", 0.0, 2.0),  # sim extent 0..4
            _span("batch", 1.0, 3.0),
            _span("root", 0.0, 10.0, domain=DOMAIN_WALL),
        ]
        summaries = {(s.domain, s.name): s for s in summarize_spans(spans)}
        assert summaries[(DOMAIN_SIM, "batch")].share_of_run == 5.0 / 4.0
        assert summaries[(DOMAIN_WALL, "root")].share_of_run == 1.0

    def test_explicit_total_overrides_the_denominator(self):
        (summary,) = summarize_spans([_span("a", 0.0, 1.0)], total_seconds=4.0)
        assert summary.share_of_run == 0.25

    def test_zero_duration_groups_do_not_divide_by_zero(self):
        (summary,) = summarize_spans([_span("hit", 2.0, 0.0)])
        assert summary.share_of_run == 0.0
        assert summary.total_seconds == 0.0

    def test_single_span_percentiles_are_its_duration(self):
        (summary,) = summarize_spans([_span("a", 0.0, 0.75)])
        assert summary.p50_seconds == 0.75
        assert summary.p99_seconds == 0.75

    def test_empty_trace_summarizes_to_nothing(self):
        assert summarize_spans([]) == []


class TestSpanCoverage:
    def test_full_root_span_covers_everything(self):
        spans = [_span("root", 0.0, 2.0, domain=DOMAIN_WALL)]
        assert span_coverage(spans, 2.0) == 1.0

    def test_overlapping_roots_never_double_count(self):
        spans = [
            _span("a", 0.0, 2.0, domain=DOMAIN_WALL),
            _span("b", 1.0, 2.0, domain=DOMAIN_WALL),  # overlaps a by 1s
        ]
        assert span_coverage(spans, 4.0) == 3.0 / 4.0

    def test_gaps_reduce_coverage(self):
        spans = [
            _span("a", 0.0, 1.0, domain=DOMAIN_WALL),
            _span("b", 3.0, 1.0, domain=DOMAIN_WALL),
        ]
        assert span_coverage(spans, 4.0) == 0.5

    def test_only_top_level_spans_of_the_domain_count(self):
        spans = [
            _span("child", 0.0, 4.0, domain=DOMAIN_WALL, depth=1),
            _span("sim-root", 0.0, 4.0, domain=DOMAIN_SIM),
        ]
        assert span_coverage(spans, 4.0, domain=DOMAIN_WALL) == 0.0

    def test_nonpositive_measurement_is_zero(self):
        assert span_coverage([], 0.0) == 0.0


class TestPhaseTable:
    def test_renders_headers_and_rows(self):
        table = format_phase_table(summarize_spans([_span("estep", 0.0, 1.0)]))
        assert "Phase" in table and "p99 (ms)" in table
        assert "estep" in table and "100.0%" in table

    def test_zero_duration_rows_render_without_crashing(self):
        table = format_phase_table(summarize_spans([_span("hit", 0.0, 0.0)]))
        assert "hit" in table and "0.0%" in table
