"""Span recording: nesting, ordering, wire round trips, worker merges."""

import pytest

from repro.telemetry import (
    DOMAIN_SIM,
    DOMAIN_WALL,
    SimClock,
    Span,
    Tracer,
    WallClock,
    merge_worker_payloads,
    null_tracer,
)
from repro.telemetry.tracer import _NULL_SPAN


class TestLiveSpans:
    def test_nesting_depth_and_close_order_on_sim_clock(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("outer"):
            clock.advance_to(1.0)
            with tracer.span("inner"):
                clock.advance_to(3.0)
            clock.advance_to(4.0)
        # Spans land in *close* order: inner finishes first.
        assert [span.name for span in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert (inner.depth, outer.depth) == (1, 0)
        assert (inner.seq, outer.seq) == (0, 1)
        assert inner.start_seconds == 1.0 and inner.duration_seconds == 2.0
        assert outer.start_seconds == 0.0 and outer.duration_seconds == 4.0
        assert {span.domain for span in tracer.spans} == {DOMAIN_SIM}
        assert tracer.depth == 0  # the stack unwound completely

    def test_nesting_on_wall_clock(self):
        tracer = Tracer(WallClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert inner.domain == outer.domain == DOMAIN_WALL
        assert inner.depth == 1 and outer.depth == 0
        # The child lives inside the parent's interval.
        assert outer.start_seconds <= inner.start_seconds
        assert inner.end_seconds <= outer.end_seconds

    def test_span_survives_an_exception(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                clock.advance_to(1.0)
                raise RuntimeError("boom")
        assert [span.name for span in tracer.spans] == ["doomed"]
        assert tracer.depth == 0

    def test_span_kwargs_become_args(self):
        tracer = Tracer(SimClock())
        with tracer.span("batch", category="serving", track=3, batch_id=7):
            pass
        (span,) = tracer.spans
        assert span.category == "serving"
        assert span.track == 3
        assert span.args_dict() == {"batch_id": 7}


class TestAddSpan:
    def test_defaults_come_from_clock_and_stack(self):
        tracer = Tracer(SimClock())
        with tracer.span("outer"):
            tracer.add_span("event", 0.5, 0.25)
        event = tracer.spans[0]
        assert event.domain == DOMAIN_SIM
        assert event.depth == 1  # recorded inside one live span
        assert event.start_seconds == 0.5 and event.duration_seconds == 0.25

    def test_explicit_domain_and_depth_override(self):
        tracer = Tracer(SimClock())
        tracer.add_span(
            "fit", 0.0, 2.0, domain=DOMAIN_WALL, depth=0, args={"iterations": 4}
        )
        (span,) = tracer.spans
        assert span.domain == DOMAIN_WALL
        assert span.depth == 0
        assert span.args == (("iterations", 4),)

    def test_args_accepts_pairs_too(self):
        tracer = Tracer(SimClock())
        tracer.add_span("x", 0.0, 1.0, args=(("a", 1), ("b", 2)))
        assert tracer.spans[0].args_dict() == {"a": 1, "b": 2}

    def test_seq_is_strictly_increasing(self):
        tracer = Tracer(SimClock())
        for index in range(5):
            tracer.add_span(f"s{index}", float(index), 1.0)
        assert [span.seq for span in tracer.spans] == [0, 1, 2, 3, 4]


class TestDisabledTracer:
    def test_enabled_tracer_requires_a_clock(self):
        with pytest.raises(ValueError, match="needs a clock"):
            Tracer(clock=None, enabled=True)

    def test_null_tracer_records_nothing(self):
        tracer = null_tracer()
        assert not tracer.enabled
        with tracer.span("ignored"):
            tracer.add_span("also ignored", 0.0, 1.0)
        tracer.absorb([Span("foreign", 0.0, 1.0)])
        assert tracer.spans == []
        assert tracer.drain_wire() == []

    def test_span_returns_the_shared_null_context(self):
        """Disabled span() allocates nothing — always the same object."""
        tracer = null_tracer()
        assert tracer.span("a") is tracer.span("b") is _NULL_SPAN


class TestWire:
    def test_round_trip_is_exact(self):
        original = Span(
            name="batch",
            start_seconds=1.25,
            duration_seconds=0.5,
            domain=DOMAIN_WALL,
            category="ipc",
            track=2,
            depth=1,
            seq=9,
            args=(("batch_id", 4), ("docs", 8)),
        )
        assert Span.from_wire(original.to_wire()) == original

    def test_drain_clears_the_buffer(self):
        tracer = Tracer(SimClock())
        tracer.add_span("a", 0.0, 1.0)
        wire = tracer.drain_wire()
        assert len(wire) == 1 and tracer.spans == []
        assert tracer.drain_wire() == []

    def test_absorb_reassigns_seq(self):
        tracer = Tracer(SimClock())
        tracer.add_span("local", 0.0, 1.0)
        tracer.absorb([Span("foreign", 5.0, 1.0, seq=99)])
        assert [span.seq for span in tracer.spans] == [0, 1]
        assert tracer.spans[1].name == "foreign"


class TestMergeWorkerPayloads:
    @staticmethod
    def _wire(name, start, track=0):
        return Span(name, start, 1.0, domain=DOMAIN_WALL, track=track).to_wire()

    def test_order_is_worker_then_seq_then_position(self):
        # Delivered out of order on purpose: the merge must not care.
        payloads = {
            1: [(1, [self._wire("w1m1", 3.0, track=2)]),
                (0, [self._wire("w1m0a", 1.0, track=2), self._wire("w1m0b", 2.0, track=2)])],
            0: [(0, [self._wire("w0m0", 0.5, track=1)])],
        }
        merged = merge_worker_payloads(payloads)
        assert [span.name for span in merged] == ["w0m0", "w1m0a", "w1m0b", "w1m1"]

    def test_track_zero_spans_get_the_worker_id(self):
        merged = merge_worker_payloads(
            {3: [(0, [self._wire("untagged", 0.0, track=0)])]}
        )
        assert merged[0].track == 3

    def test_tagged_tracks_are_preserved(self):
        merged = merge_worker_payloads(
            {3: [(0, [self._wire("tagged", 0.0, track=7)])]}
        )
        assert merged[0].track == 7

    def test_merged_spans_nest_under_the_parent(self):
        """Worker-local depth 0 becomes depth 1 in the combined trace."""
        merged = merge_worker_payloads(
            {0: [(0, [self._wire("worker_batch", 0.0, track=1)])]}
        )
        assert merged[0].depth == 1

    def test_killed_worker_contributes_its_prefix(self):
        """A dead worker's buffered messages still merge; the rest are absent."""
        full = {
            0: [(0, [self._wire("w0m0", 0.0, track=1)]),
                (1, [self._wire("w0m1", 1.0, track=1)])],
            1: [(0, [self._wire("w1m0", 0.0, track=2)])],
        }
        truncated = {0: full[0][:1], 1: full[1]}
        names = [span.name for span in merge_worker_payloads(truncated)]
        assert names == ["w0m0", "w1m0"]
        # The prefix merge is itself a prefix-per-worker of the full merge.
        full_names = [span.name for span in merge_worker_payloads(full)]
        assert [name for name in full_names if name != "w0m1"] == names

    def test_empty_payloads_merge_to_nothing(self):
        assert merge_worker_payloads({}) == []
