"""The pinned statistics rules and the deterministic metrics registry.

The percentile and histogram-boundary rules are *pinned* here — these
tests are the contract that every stats surface (serving reports, the
trace summarizer, cross-process histogram merges) relies on.
"""

import math

import numpy as np
import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry, null_metrics
from repro.telemetry.metrics import (
    _NULL_COUNTER,
    _NULL_GAUGE,
    _NULL_HISTOGRAM,
    pinned_percentile,
)


class TestPinnedPercentile:
    def test_empty_input_is_nan_not_zero(self):
        assert math.isnan(pinned_percentile([], 50.0))
        assert math.isnan(pinned_percentile([], 99.0))

    def test_single_sample_answers_every_percentile(self):
        for percentile in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert pinned_percentile([0.125], percentile) == 0.125

    def test_duplicates_answer_exactly(self):
        values = [0.3, 0.3, 0.3, 0.3]
        assert pinned_percentile(values, 50.0) == 0.3
        assert pinned_percentile(values, 99.0) == 0.3

    def test_linear_interpolation_between_closest_ranks(self):
        # Two samples: p50 sits exactly half way.
        assert pinned_percentile([0.0, 10.0], 50.0) == 5.0
        # p25 of [0,1,2,3]: fractional rank 0.75 -> 0.75.
        assert pinned_percentile([0.0, 1.0, 2.0, 3.0], 25.0) == 0.75

    def test_matches_numpy_default_bit_for_bit(self):
        rng = np.random.default_rng(42)
        values = rng.exponential(0.01, size=101)
        for percentile in (50.0, 95.0, 99.0):
            assert pinned_percentile(values, percentile) == float(
                np.percentile(values, percentile)
            )


class TestCounterGauge:
    def test_counter_accumulates_and_rejects_negatives(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1.0)

    def test_gauge_is_last_write_wins(self):
        gauge = Gauge("depth")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0


class TestHistogram:
    def test_edges_must_exist_and_ascend(self):
        with pytest.raises(ValueError, match="at least one bucket edge"):
            Histogram("h", edges=())
        with pytest.raises(ValueError, match="strictly ascending"):
            Histogram("h", edges=(1.0, 1.0, 2.0))

    def test_right_inclusive_boundary_rule_is_pinned(self):
        """Bucket i covers (e[i-1], e[i]] — an edge value belongs below."""
        histogram = Histogram("h", edges=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0):  # (-inf, 1]
            histogram.observe(value)
        for value in (1.5, 2.0):  # (1, 2]
            histogram.observe(value)
        histogram.observe(2.0001)  # (2, 4]
        histogram.observe(4.0)  # (2, 4] — edge value lands below
        histogram.observe(4.0001)  # (4, inf) overflow
        assert histogram.counts == [2, 2, 2, 1]
        assert histogram.count == 7

    def test_as_dict_is_json_ready(self):
        histogram = Histogram("h", edges=(1.0, 2.0))
        histogram.observe(1.5)
        assert histogram.as_dict() == {
            "edges": [1.0, 2.0],
            "counts": [0, 1, 0],
            "count": 1,
        }


class TestRegistry:
    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("n") is registry.counter("n")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", (1.0,)) is registry.histogram("h", (1.0,))

    def test_names_preserve_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.gauge("alpha")
        registry.histogram("mid", (1.0,))
        assert registry.names() == ["zeta", "alpha", "mid"]
        assert list(registry.as_dict()) == ["zeta", "alpha", "mid"]
        assert len(registry) == 3

    def test_kind_mismatch_is_a_type_error(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(TypeError, match="already a Counter"):
            registry.gauge("n")
        with pytest.raises(TypeError, match="already a Counter"):
            registry.histogram("n", (1.0,))

    def test_disabled_registry_hands_out_null_singletons(self):
        registry = null_metrics()
        assert registry.counter("n") is _NULL_COUNTER
        assert registry.gauge("g") is _NULL_GAUGE
        assert registry.histogram("h", (1.0,)) is _NULL_HISTOGRAM
        registry.counter("n").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h", (1.0,)).observe(0.5)
        assert len(registry) == 0 and registry.as_dict() == {}


class TestWire:
    def test_drain_resets_counters_and_histograms_to_deltas(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", (1.0,)).observe(0.5)
        first = registry.drain_wire()
        assert ("counter", "n", 3.0) in first
        assert ("gauge", "g", 7.0) in first
        assert ("histogram", "h", (1.0,), (1, 0)) in first
        # Counters and histogram counts reset; the gauge keeps its level.
        registry.counter("n").inc(1)
        second = registry.drain_wire()
        assert ("counter", "n", 1.0) in second
        assert ("gauge", "g", 7.0) in second
        assert ("histogram", "h", (1.0,), (0, 0)) in second

    def test_merge_adds_counters_overwrites_gauges_adds_histograms(self):
        parent = MetricsRegistry()
        parent.counter("n").inc(1)
        parent.histogram("h", (1.0,)).observe(0.5)
        parent.merge_wire(
            [
                ("counter", "n", 2.0),
                ("gauge", "g", 9.0),
                ("histogram", "h", (1.0,), (1, 2)),
            ]
        )
        flat = parent.as_dict()
        assert flat["n"] == 3.0
        assert flat["g"] == 9.0
        assert flat["h"]["counts"] == [2, 2]

    def test_merge_is_commutative_for_worker_deltas(self):
        """Counter/histogram deltas sum the same under any interleaving."""
        wires = [
            [("counter", "n", 2.0), ("histogram", "h", (1.0,), (1, 0))],
            [("counter", "n", 5.0), ("histogram", "h", (1.0,), (0, 3))],
        ]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for wire in wires:
            forward.merge_wire(wire)
        for wire in reversed(wires):
            backward.merge_wire(wire)
        assert forward.as_dict() == backward.as_dict()

    def test_merge_rejects_mismatched_histogram_edges(self):
        parent = MetricsRegistry()
        parent.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError, match="edges disagree"):
            parent.merge_wire([("histogram", "h", (1.0, 3.0), (0, 0, 0))])

    def test_merge_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match="unknown metrics wire entry"):
            MetricsRegistry().merge_wire([("summary", "n", 1.0)])

    def test_disabled_merge_is_a_no_op(self):
        registry = null_metrics()
        registry.merge_wire([("counter", "n", 2.0)])
        assert registry.as_dict() == {}
